"""Chunked linear scans with early termination.

For high intrinsic-dimensional data the paper's ``Exact-Counting`` falls
back to a sequential scan "because this is more efficient than any
indexing methods for high-dimensional data" (§4).  The scan is chunked so
each step is one vectorised distance kernel, and it stops as soon as the
count reaches ``stop_at``.  :func:`linear_count_block` is the batched
form: one sweep of the store decides many queries at once with early
retirement, handing retirement-stalled stragglers back to broadcast
per-query scans.

:func:`brute_force_knn` and :func:`brute_force_range` are also the
reference oracles used throughout the test suite.
"""

from __future__ import annotations

import numpy as np

from ..data import MEMMAP_ELEM_BUDGET, Dataset
from ..exceptions import ParameterError

#: default number of objects per distance kernel call.
DEFAULT_CHUNK = 2048

#: target number of array elements (pairs x dimensionality) per batched
#: verification kernel — bounds the materialised difference block.
#: Out-of-core stores use the tighter, canonical
#: :data:`repro.data.MEMMAP_ELEM_BUDGET` instead (re-exported here),
#: shared with the chunked ``Dataset`` gathers.
BLOCK_ELEM_BUDGET = 1 << 21


def _pairs_per_kernel(dataset: Dataset) -> int:
    """Pair budget per kernel, scaled by the store's row width.

    A screening backend computes the block in narrower floats, so its
    :attr:`~repro.data.Dataset.kernel_budget_scale` widens the pair
    budget to keep the materialised bytes per kernel roughly constant.
    Memmap-backed datasets get a tighter budget: sweeping them
    materialises each chunk's rows in RAM, and the chunk size is the
    memory ceiling the out-of-core path promises.
    """
    shape = getattr(dataset.store, "shape", None)
    dim = int(shape[1]) if shape is not None and len(shape) == 2 else 64
    budget = (
        MEMMAP_ELEM_BUDGET
        if getattr(dataset, "store_kind", "ram") == "memmap"
        else BLOCK_ELEM_BUDGET
    )
    pairs = max(256, budget // max(1, dim))
    return int(pairs * dataset.kernel_budget_scale)


def linear_count(
    dataset: Dataset,
    q: int,
    r: float,
    stop_at: int | None = None,
    chunk: int = DEFAULT_CHUNK,
    exclude_self: bool = True,
) -> int:
    """Count objects within ``r`` of ``q`` by scanning the whole dataset.

    Stops as soon as ``stop_at`` neighbors are confirmed (the count
    returned may then understate the true total).
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    if chunk < 1:
        raise ParameterError(f"chunk must be >= 1, got {chunk}")
    n = dataset.n
    count = 0
    for lo in range(0, n, chunk):
        idx = np.arange(lo, min(lo + chunk, n), dtype=np.int64)
        d = dataset.dist_many(q, idx, bound=r)
        within = int(np.count_nonzero(d <= r))
        if exclude_self and lo <= q < lo + chunk:
            within -= 1
        count += within
        if stop_at is not None and count >= stop_at:
            return count
    return count


def linear_count_block(
    dataset: Dataset,
    qs: np.ndarray,
    r: float,
    stop_at: "int | np.ndarray | None" = None,
    exclude_self: bool = True,
    subset: np.ndarray | None = None,
) -> np.ndarray:
    """Neighbor counts for *all* of ``qs`` in one chunked sweep.

    The batched counterpart of :func:`linear_count`: instead of one full
    early-terminated scan per query, the store is swept in chunks and
    every still-pending query is evaluated against each chunk with a
    single ``pair_dist`` kernel; queries retire from the sweep the
    moment their count reaches ``stop_at``.  A returned count below
    ``stop_at`` saw the entire store and is the true neighbor count —
    identical to :func:`linear_count`'s (counts at or above ``stop_at``
    may overshoot differently).  ``stop_at`` may be an array giving each
    query its own termination threshold — the sharded engine uses this
    to stop a shard's sweep as soon as the *residual* count the global
    merge still needs is confirmed, rather than the full ``k``.

    ``subset`` restricts the swept store to a **sorted** array of object
    ids: counts then cover only neighbors inside that id set (queries
    themselves may lie outside it).  This is the per-shard verification
    sweep of the sharded engine — each shard counts every candidate
    against its own slice of the data, and the exact global count is the
    sum of the per-shard counts because the shards partition the
    dataset.  ``exclude_self`` keeps its meaning: a query that is itself
    a member of ``subset`` does not count itself.

    The pair-sweep wins while each step retires a healthy share of the
    pending set (quick-deciding false positives, the common case); once
    retirement stalls the survivors are slow full-scanners, for which
    the broadcast one-to-many kernel moves less memory than pair
    gathers — so the sweep hands the stragglers to per-query scans that
    resume from the current offset.  The chunk span adapts to the
    number of pending queries so each kernel stays near a fixed element
    budget regardless of how many candidates remain.
    """
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    qs = np.asarray(qs, dtype=np.int64)
    counts = np.zeros(qs.size, dtype=np.int64)
    if qs.size == 0:
        return counts
    stops: np.ndarray | None = None
    if stop_at is not None:
        stops = np.broadcast_to(
            np.asarray(stop_at, dtype=np.int64), qs.shape
        )
        if np.any(stops < 1):
            raise ParameterError("stop_at thresholds must be >= 1")
    if subset is None:
        n = dataset.n
        # Position of each query in the swept range == its own id.
        qpos = qs
    else:
        subset = np.asarray(subset, dtype=np.int64)
        n = subset.size
        if n == 0:
            return counts
        # Position of each query inside ``subset`` (or -1 when absent),
        # so self-exclusion fires exactly when the sweep passes it.
        pos = np.searchsorted(subset, qs)
        pos_safe = np.minimum(pos, n - 1)
        qpos = np.where(subset[pos_safe] == qs, pos_safe, -1)
    budget = _pairs_per_kernel(dataset)
    pending = np.arange(qs.size, dtype=np.int64)
    lo = 0
    while lo < n and pending.size:
        if stop_at is None or pending.size < 8:
            break  # nothing can retire / too few left: broadcast scans win
        span = min(n - lo, max(64, budget // pending.size))
        pos_range = np.arange(lo, lo + span, dtype=np.int64)
        idx = pos_range if subset is None else subset[pos_range]
        left = np.repeat(qs[pending], span)
        d = dataset.pair_dist(
            left, np.tile(idx, pending.size), bound=r, consistent=True
        )
        within = (d <= r).reshape(pending.size, span)
        add = within.sum(axis=1).astype(np.int64)
        if exclude_self:
            add[(qpos[pending] >= lo) & (qpos[pending] < lo + span)] -= 1
        counts[pending] += add
        before = pending.size
        pending = pending[counts[pending] < stops[pending]]
        lo += span
        if pending.size > 0.75 * before:
            break  # retirement stalled: survivors are full-scanners
    # -- straggler tail: per-query broadcast scans from the current offset
    for j in pending:
        q = int(qs[j])
        c = int(counts[j])
        for tail_lo in range(lo, n, DEFAULT_CHUNK):
            pos_range = np.arange(
                tail_lo, min(tail_lo + DEFAULT_CHUNK, n), dtype=np.int64
            )
            idx = pos_range if subset is None else subset[pos_range]
            d = dataset.dist_many(q, idx, bound=r)
            c += int(np.count_nonzero(d <= r))
            if exclude_self and tail_lo <= qpos[j] < tail_lo + DEFAULT_CHUNK:
                c -= 1
            if stops is not None and c >= stops[j]:
                break
        counts[j] = c
    return counts


def brute_force_range(
    dataset: Dataset, q: int, r: float, exclude_self: bool = True
) -> np.ndarray:
    """All ids within distance ``r`` of object ``q`` (sorted)."""
    idx = np.arange(dataset.n, dtype=np.int64)
    d = dataset.dist_many(q, idx, bound=r)
    hits = idx[d <= r]
    if exclude_self:
        hits = hits[hits != q]
    return hits


def brute_force_knn(
    dataset: Dataset, q: int, K: int, exclude_self: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``K`` nearest neighbors of ``q`` by full scan (ids, dists)."""
    if K < 1:
        raise ParameterError(f"K must be >= 1, got {K}")
    idx = np.arange(dataset.n, dtype=np.int64)
    d = dataset.dist_many(q, idx)
    if exclude_self:
        keep = idx != q
        idx, d = idx[keep], d[keep]
    if K >= idx.size:
        order = np.argsort(d, kind="stable")
    else:
        part = np.argpartition(d, K)[:K]
        order = part[np.argsort(d[part], kind="stable")]
    return idx[order[:K]], d[order[:K]]


def brute_force_outliers(dataset: Dataset, r: float, k: int) -> np.ndarray:
    """Reference DOD answer: ids of all objects with < ``k`` neighbors.

    Quadratic; only suitable for tests and small calibration runs.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    out = []
    for q in range(dataset.n):
        if linear_count(dataset, q, r, stop_at=k) < k:
            out.append(q)
    return np.asarray(out, dtype=np.int64)
