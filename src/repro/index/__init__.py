"""Exact metric-search substrates: VP-tree, ball partitioning, linear scan."""

from .linear import (
    brute_force_knn,
    brute_force_outliers,
    brute_force_range,
    linear_count,
)
from .partition import PartitionResult, vp_partition
from .vptree import VPTree

__all__ = [
    "VPTree",
    "vp_partition",
    "PartitionResult",
    "linear_count",
    "brute_force_knn",
    "brute_force_range",
    "brute_force_outliers",
]
