"""Experiment runner: regenerates every table and figure of §6.

Each ``run_*`` function reproduces one experiment of the paper's
evaluation at the configured bench scale and returns one or more
:class:`~repro.harness.tables.ExperimentTable` objects whose layout
matches the paper's.  ``EXPERIMENTS`` maps experiment ids to runners;
``run_experiment`` is the single entry point used by the benchmarks and
the CLI.

Times are wall-clock seconds on the scaled synthetic suites — the
comparison *shape* (who wins, by what factor) is the reproduction
target, not absolute numbers (DESIGN.md §3).  Where it matters, a
companion table reports distance computations, the machine-independent
cost the paper's analysis is actually about.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..analysis.fp import filtering_stats
from ..baselines import dolphin_dod, nested_loop_dod, snif_dod, vptree_dod
from ..core.dod import graph_dod
from ..core.result import DODResult
from ..datasets import get_spec, neighbor_counts
from ..engine import DetectionEngine
from ..exceptions import ParameterError
from ..graphs.mrpg import MRPGConfig, build_mrpg
from ..index.vptree import VPTree
from .tables import ExperimentTable
from .workloads import (
    BASELINE_NAMES,
    GRAPH_NAMES,
    Workload,
    bench_suites,
    default_workload,
    get_dataset,
    get_graph,
    get_verifier,
    suite_K,
)

#: suites used by the parameter/figure sweeps by default (a subset keeps
#: the bench wall-time sane; set REPRO_BENCH_SUITES=all for the paper's
#: full grid).
SWEEP_SUITES: tuple[str, ...] = ("glove", "hepmass", "sift")


def detection_budget_s() -> float | None:
    """Per-method online-time budget from ``REPRO_BENCH_BUDGET`` [sec].

    Mirrors the paper's 8-hour online limit: a method whose detection
    exceeds the budget is reported as NA in Table 5 (the run still
    completes — Python cannot preempt it — but the table records the
    timeout semantics).  Unset means no budget.
    """
    import os

    raw = os.environ.get("REPRO_BENCH_BUDGET", "").strip()
    return float(raw) if raw else None


def _maybe_na(seconds: float, budget: float | None) -> float | None:
    return None if (budget is not None and seconds > budget) else seconds

_vptree_cache: dict[tuple[str, int, int], VPTree] = {}


def _get_vptree(w: Workload) -> VPTree:
    """Offline VP-tree for the VP-tree DOD baseline (cached, timed)."""
    key = (w.suite, w.n, w.seed)
    if key not in _vptree_cache:
        dataset = get_dataset(w)
        t0 = time.perf_counter()
        tree = VPTree(dataset, capacity=16, rng=w.seed)
        tree.build_seconds = time.perf_counter() - t0  # type: ignore[attr-defined]
        _vptree_cache[key] = tree
    return _vptree_cache[key]


def detect_with_graph(w: Workload, builder: str, n_jobs: int = 1) -> DODResult:
    """Online detection with a (cached) prebuilt proximity graph."""
    dataset = get_dataset(w)
    graph = get_graph(w, builder)
    verifier = get_verifier(w)
    return graph_dod(dataset, graph, w.r, w.k, verifier=verifier, n_jobs=n_jobs,
                     rng=w.seed)


def detect_with_baseline(w: Workload, name: str, n_jobs: int = 1) -> DODResult:
    """Online detection with one of the state-of-the-art baselines."""
    dataset = get_dataset(w)
    if name == "nested-loop":
        return nested_loop_dod(dataset, w.r, w.k, rng=w.seed, n_jobs=n_jobs)
    if name == "snif":
        return snif_dod(dataset, w.r, w.k, rng=w.seed, n_jobs=n_jobs)
    if name == "dolphin":
        return dolphin_dod(dataset, w.r, w.k, rng=w.seed, n_jobs=n_jobs)
    if name == "vptree":
        return vptree_dod(
            dataset, w.r, w.k, tree=_get_vptree(w), rng=w.seed, n_jobs=n_jobs
        )
    raise ParameterError(f"unknown baseline {name!r}")


# -- Tables 1-2: datasets and default parameters ---------------------------------


def run_table1(suites: "tuple[str, ...] | None" = None) -> list[ExperimentTable]:
    """Table 1: dataset statistics (cardinality, dim, metric)."""
    suites = bench_suites() if suites is None else suites
    t = ExperimentTable(
        "table1", "Datasets (scaled synthetic suites)",
        ["dataset", "cardinality", "dim", "distance"],
    )
    for name in suites:
        w = default_workload(name)
        spec = get_spec(name)
        t.add_row(dataset=name, cardinality=w.n, dim=spec.dim, distance=spec.metric)
    return [t]


def run_table2(suites: "tuple[str, ...] | None" = None) -> list[ExperimentTable]:
    """Table 2: default (r, k) and the *measured* outlier ratio."""
    suites = bench_suites() if suites is None else suites
    t = ExperimentTable(
        "table2", "Default parameters",
        ["dataset", "r", "k", "outlier_ratio_pct"],
    )
    for name in suites:
        w = default_workload(name)
        counts = neighbor_counts(get_dataset(w), w.r)
        ratio = float(np.count_nonzero(counts < w.k)) / w.n
        t.add_row(dataset=name, r=w.r, k=w.k, outlier_ratio_pct=100 * ratio)
    return [t]


# -- Tables 3-4: pre-processing ----------------------------------------------------


def run_table3(suites: "tuple[str, ...] | None" = None) -> list[ExperimentTable]:
    """Table 3: graph pre-processing time per builder."""
    suites = bench_suites() if suites is None else suites
    t = ExperimentTable(
        "table3", "Pre-processing time [sec]",
        ["dataset", *GRAPH_NAMES],
    )
    for name in suites:
        w = default_workload(name)
        cells = {"dataset": name}
        for builder in GRAPH_NAMES:
            graph = get_graph(w, builder)
            cells[builder] = graph.meta["build_seconds"]
        t.add_row(**cells)
    t.notes.append(
        "paper shape: MRPG-basic fastest graph build in most cases; "
        "NSW slowest (sequential insertion); MRPG slightly above MRPG-basic"
    )
    return [t]


def run_table4(suite: str = "glove") -> list[ExperimentTable]:
    """Table 4: decomposed pre-processing time on one suite."""
    w = default_workload(suite)
    t = ExperimentTable(
        "table4", f"Decomposed pre-processing time on {suite} [sec]",
        ["phase", "kgraph", "mrpg-basic", "mrpg"],
    )
    kgraph = get_graph(w, "kgraph")
    basic = get_graph(w, "mrpg-basic")
    full = get_graph(w, "mrpg")
    rows = [
        ("NNDescent(+)", kgraph.meta["phase_seconds"]["nndescent"],
         basic.meta["phase_seconds"]["nndescent+"],
         full.meta["phase_seconds"]["nndescent+"]),
        ("Connect-SubGraphs", None,
         basic.meta["phase_seconds"]["connect_subgraphs"],
         full.meta["phase_seconds"]["connect_subgraphs"]),
        ("Remove-Detours", None,
         basic.meta["phase_seconds"]["remove_detours"],
         full.meta["phase_seconds"]["remove_detours"]),
        ("Remove-Links", None,
         basic.meta["phase_seconds"]["remove_links"],
         full.meta["phase_seconds"]["remove_links"]),
    ]
    for phase, a, b, c in rows:
        t.add_row(phase=phase, **{"kgraph": a, "mrpg-basic": b, "mrpg": c})
    return [t]


# -- Tables 5-8: detection -----------------------------------------------------------


def run_table5(suites: "tuple[str, ...] | None" = None) -> list[ExperimentTable]:
    """Table 5: DOD running time, all eight algorithms."""
    suites = bench_suites() if suites is None else suites
    methods = [*BASELINE_NAMES, *GRAPH_NAMES]
    t = ExperimentTable(
        "table5", "Running time [sec]", ["dataset", *methods],
    )
    pairs = ExperimentTable(
        "table5_pairs", "Distance computations during detection",
        ["dataset", *methods],
    )
    budget = detection_budget_s()
    for name in suites:
        w = default_workload(name)
        cells: dict = {"dataset": name}
        pcells: dict = {"dataset": name}
        for method in BASELINE_NAMES:
            res = detect_with_baseline(w, method)
            cells[method] = _maybe_na(res.seconds, budget)
            pcells[method] = res.pairs
        for builder in GRAPH_NAMES:
            res = detect_with_graph(w, builder)
            cells[builder] = _maybe_na(res.seconds, budget)
            pcells[builder] = res.pairs
        t.add_row(**cells)
        pairs.add_row(**pcells)
    t.notes.append(
        "paper shape: proximity-graph methods beat all baselines; "
        "MRPG is the overall winner"
    )
    if budget is not None:
        t.notes.append(f"NA = exceeded the {budget:g}s online budget")
    return [t, pairs]


def run_table6(suites: "tuple[str, ...] | None" = None) -> list[ExperimentTable]:
    """Table 6: index size [MB] per algorithm.

    Nested-loop builds nothing.  SNIF and DOLPHIN build their structures
    online; their sizes are the peak sizes of one run at the default
    parameters (centers + membership for SNIF, the candidate index for
    DOLPHIN) — the same notion the paper tabulates.
    """
    suites = bench_suites() if suites is None else suites
    t = ExperimentTable(
        "table6", "Index size [MB]",
        ["dataset", "nested-loop", "snif", "dolphin", "vptree", *GRAPH_NAMES],
    )
    mb = 1.0 / (1024 * 1024)
    for name in suites:
        w = default_workload(name)
        snif_res = detect_with_baseline(w, "snif")
        dolphin_res = detect_with_baseline(w, "dolphin")
        cells = {
            "dataset": name,
            "nested-loop": 0.0,
            # centers (ids) + per-object membership, 8 bytes each.
            "snif": 8.0 * (w.n + snif_res.counts["clusters"]) * mb,
            # ids + counts + slot map entries for the peak candidate set.
            "dolphin": 24.0 * max(dolphin_res.counts["max_index"], 1) * mb,
            "vptree": _get_vptree(w).nbytes * mb,
        }
        for builder in GRAPH_NAMES:
            cells[builder] = get_graph(w, builder).nbytes * mb
        t.add_row(**cells)
    t.notes.append(
        "paper shape: graphs cost more memory than the baselines but stay O(nK)"
    )
    return [t]


def run_table7(suites: "tuple[str, ...] | None" = None) -> list[ExperimentTable]:
    """Table 7: false positives after the filtering phase, per graph."""
    suites = bench_suites() if suites is None else suites
    t = ExperimentTable(
        "table7", "False positives after filtering", ["dataset", *GRAPH_NAMES],
    )
    for name in suites:
        w = default_workload(name)
        dataset = get_dataset(w)
        verifier = get_verifier(w)
        cells = {"dataset": name}
        for builder in GRAPH_NAMES:
            stats = filtering_stats(
                dataset, get_graph(w, builder), w.r, w.k, verifier=verifier
            )
            cells[builder] = stats.false_positives
        t.add_row(**cells)
    t.notes.append("paper shape: f(MRPG) <= f(MRPG-basic) <= f(KGraph); NSW worst")
    return [t]


def run_table8(suite: str = "glove") -> list[ExperimentTable]:
    """Table 8: filtering vs verification time on one suite."""
    w = default_workload(suite)
    t = ExperimentTable(
        "table8", f"Decomposed detection time on {suite} [sec]",
        ["phase", *GRAPH_NAMES],
    )
    results = {b: detect_with_graph(w, b) for b in GRAPH_NAMES}
    for phase in ("filter", "verify"):
        t.add_row(phase=phase, **{b: results[b].phases[phase] for b in GRAPH_NAMES})
    t.notes.append(
        "paper shape: MRPG(-basic) spends more on filtering but slashes "
        "verification; MRPG's K'-NN shortcut nearly removes it"
    )
    return [t]


# -- Figures 6-10: parameter sweeps ---------------------------------------------------

RATES: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)


def run_fig6(
    suites: "tuple[str, ...] | None" = None,
    rates: tuple[float, ...] = RATES,
) -> list[ExperimentTable]:
    """Figure 6: pre-processing time vs sampling rate."""
    suites = bench_suites(SWEEP_SUITES) if suites is None else suites
    t = ExperimentTable(
        "fig6", "Pre-processing time vs sampling rate [sec]",
        ["dataset", "rate", "n", *GRAPH_NAMES],
    )
    for name in suites:
        base = default_workload(name)
        for rate in rates:
            w = base.scaled(rate)
            cells = {"dataset": name, "rate": rate, "n": w.n}
            for builder in GRAPH_NAMES:
                cells[builder] = get_graph(w, builder).meta["build_seconds"]
            t.add_row(**cells)
    t.notes.append("paper shape: near-linear growth in n for every builder")
    return [t]


def run_fig7(
    suites: "tuple[str, ...] | None" = None,
    rates: tuple[float, ...] = RATES,
) -> list[ExperimentTable]:
    """Figure 7: detection time vs sampling rate."""
    suites = bench_suites(SWEEP_SUITES) if suites is None else suites
    t = ExperimentTable(
        "fig7", "Running time vs sampling rate [sec]",
        ["dataset", "rate", "n", *GRAPH_NAMES],
    )
    for name in suites:
        base = default_workload(name)
        for rate in rates:
            w = base.scaled(rate)
            cells = {"dataset": name, "rate": rate, "n": w.n}
            for builder in GRAPH_NAMES:
                cells[builder] = detect_with_graph(w, builder).seconds
            t.add_row(**cells)
    t.notes.append("paper shape: MRPG dominates at every rate; near-linear in n")
    return [t]


def engine_for(w: Workload, builder: str, n_jobs: int = 1) -> DetectionEngine:
    """A fresh :class:`DetectionEngine` over the cached offline artifacts."""
    return DetectionEngine(
        get_dataset(w),
        get_graph(w, builder),
        verifier=get_verifier(w),
        n_jobs=n_jobs,
        rng=w.seed,
    )


def _check_grid_agreement(
    results_by_builder: "dict[str, dict]", key, what: str
) -> int:
    """Every builder must serve the identical exact outlier set; returns its size."""
    sets = {b: results[key] for b, results in results_by_builder.items()}
    first_builder = next(iter(sets))
    reference = sets[first_builder]
    for builder, res in sets.items():
        if not reference.same_outliers(res):
            raise AssertionError(
                f"{what}: {builder} disagrees with {first_builder} at {key} "
                f"— exactness violated"
            )
    return reference.n_outliers


def run_fig8(
    suites: "tuple[str, ...] | None" = None,
    k_factors: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2, 1.5),
) -> list[ExperimentTable]:
    """Figure 8: impact of k, served by one :class:`DetectionEngine` per graph.

    The paper reruns detection from scratch per grid point; the serving
    system answers the whole grid from one engine, so each cell is the
    *marginal* cost of that ``k`` given everything cheaper queries
    already proved.  All builders must return identical outlier sets
    (checked), reported in the ``outliers`` column.
    """
    suites = bench_suites(SWEEP_SUITES) if suites is None else suites
    t = ExperimentTable(
        "fig8", "Marginal serving time vs k [sec]",
        ["dataset", "k", "outliers", *GRAPH_NAMES],
    )
    for name in suites:
        base = default_workload(name)
        ks = sorted({max(1, int(round(base.k * f))) for f in k_factors})
        by_builder = {
            b: engine_for(base, b).sweep([base.r], k_grid=ks).results
            for b in GRAPH_NAMES
        }
        for k in ks:
            key = (base.r, k)
            n_out = _check_grid_agreement(by_builder, key, f"fig8 {name}")
            t.add_row(
                dataset=name, k=k, outliers=n_out,
                **{b: by_builder[b][key].seconds for b in GRAPH_NAMES},
            )
    t.notes.append(
        "one engine serves the whole k-grid per graph; cells are marginal "
        "costs under cross-query reuse (largest k pays the cold run)"
    )
    t.notes.append("all builders verified to return identical outlier sets")
    return [t]


def run_fig9(
    suites: "tuple[str, ...] | None" = None,
    r_factors: tuple[float, ...] = (0.90, 0.95, 1.0, 1.05, 1.10),
) -> list[ExperimentTable]:
    """Figure 9: impact of r, served by one :class:`DetectionEngine` per graph.

    Engine counterpart of the paper's sweep: the smallest radius pays
    the cold run, larger radii reuse its inlier lower bounds and mostly
    decide from cache.  All builders must return identical outlier sets
    (checked), reported in the ``outliers`` column.
    """
    suites = bench_suites(SWEEP_SUITES) if suites is None else suites
    t = ExperimentTable(
        "fig9", "Marginal serving time vs r [sec]",
        ["dataset", "r", "outliers", *GRAPH_NAMES],
    )
    for name in suites:
        base = default_workload(name)
        r_grid = [base.r * f for f in sorted(set(r_factors))]
        by_builder = {
            b: engine_for(base, b).sweep(r_grid, k=base.k).results
            for b in GRAPH_NAMES
        }
        for r in r_grid:
            key = (r, base.k)
            n_out = _check_grid_agreement(by_builder, key, f"fig9 {name}")
            t.add_row(
                dataset=name, r=r, outliers=n_out,
                **{b: by_builder[b][key].seconds for b in GRAPH_NAMES},
            )
    t.notes.append(
        "one engine serves the whole r-grid per graph; smaller r means more "
        "outliers, and the smallest r pays the cold run"
    )
    t.notes.append("all builders verified to return identical outlier sets")
    return [t]


def run_engine_sweep(
    suites: "tuple[str, ...] | None" = None,
    r_factors: tuple[float, ...] = (0.90, 0.95, 1.0, 1.05, 1.10),
) -> list[ExperimentTable]:
    """Engine extension: r-sweep via :class:`DetectionEngine` vs naive reruns.

    The cross-query-reuse headline: the same 5-point ``r`` grid (fixed
    ``k``) answered by five independent :func:`graph_dod` calls and by
    one engine ``sweep``, with the outlier sets verified identical
    point-by-point.
    """
    suites = bench_suites(SWEEP_SUITES) if suites is None else suites
    t = ExperimentTable(
        "engine_sweep",
        "DetectionEngine r-sweep vs per-query reruns (MRPG)",
        ["dataset", "n", "queries", "naive_sec", "engine_sec", "speedup",
         "cache_decided_pct"],
    )
    for name in suites:
        w = default_workload(name)
        dataset = get_dataset(w)
        graph = get_graph(w, "mrpg")
        verifier = get_verifier(w)
        r_grid = [w.r * f for f in sorted(set(r_factors))]

        t0 = time.perf_counter()
        naive = {
            r: graph_dod(dataset, graph, r, w.k, verifier=verifier, rng=w.seed)
            for r in r_grid
        }
        naive_s = time.perf_counter() - t0

        engine = engine_for(w, "mrpg")
        t0 = time.perf_counter()
        sweep = engine.sweep(r_grid, k=w.k)
        engine_s = time.perf_counter() - t0

        for r in r_grid:
            if not naive[r].same_outliers(sweep.result(r, w.k)):
                raise AssertionError(
                    f"engine_sweep {name}: engine disagrees with graph_dod at "
                    f"r={r} — exactness violated"
                )
        cache_pct = 100.0 * engine.stats["cache_decided"] / (
            dataset.n * len(r_grid)
        )
        t.add_row(
            dataset=name, n=dataset.n, queries=len(r_grid), naive_sec=naive_s,
            engine_sec=engine_s, speedup=naive_s / engine_s,
            cache_decided_pct=cache_pct,
        )
    t.notes.append(
        "identical outlier sets verified per grid point; speedup = naive/engine"
    )
    return [t]


def run_fig10(
    suites: "tuple[str, ...] | None" = None,
    jobs: tuple[int, ...] = (1, 2, 4),
) -> list[ExperimentTable]:
    """Figure 10: impact of the number of workers.

    Python threads only scale through GIL-releasing numpy kernels, so the
    reproduction target is the monotone *shape*, not the paper's slope.
    """
    suites = bench_suites(SWEEP_SUITES) if suites is None else suites
    t = ExperimentTable(
        "fig10", "Running time vs workers [sec]",
        ["dataset", "n_jobs", *GRAPH_NAMES],
    )
    for name in suites:
        base = default_workload(name)
        for n_jobs in jobs:
            cells = {"dataset": name, "n_jobs": n_jobs}
            for builder in GRAPH_NAMES:
                cells[builder] = detect_with_graph(base, builder, n_jobs=n_jobs).seconds
            t.add_row(**cells)
    return [t]


# -- §6.2 ablation -----------------------------------------------------------------


def run_ablation(
    suite: str = "deep",
    K: int | None = 8,
    k_factor: float = 2.0,
) -> list[ExperimentTable]:
    """§6.2 MRPG variant study: false positives without Connect/Detours.

    Paper (PAMAP2, K=40, default k): no-Connect&no-Detours 11937 >
    no-Detours 9720 > no-Connect 4712 > full MRPG 3986.

    At thousands (not millions) of objects the default configuration is
    too easy — every variant reaches every neighbor — so the default
    here *stresses reachability* the way §3 motivates: a small degree
    (``K=8``) and ``k`` twice the suite default (``k > K`` forces
    multi-hop traversal).  Pass ``K=None, k_factor=1.0`` for the
    paper-faithful (but at this scale degenerate) setting.
    """
    base = default_workload(suite)
    w = Workload(base.suite, base.n, base.r, max(1, int(round(base.k * k_factor))),
                 base.seed)
    dataset = get_dataset(w)
    verifier = get_verifier(w)
    if K is None:
        K = suite_K(suite)
    variants = {
        "mrpg (full)": MRPGConfig(K=K),
        "w/o Connect-SubGraphs": MRPGConfig(K=K, connect=False),
        "w/o Remove-Detours": MRPGConfig(K=K, detours=False),
        "w/o both": MRPGConfig(K=K, connect=False, detours=False),
    }
    t = ExperimentTable(
        "ablation_mrpg",
        f"MRPG variants: false positives on {suite} (K={K}, k={w.k})",
        ["variant", "false_positives", "build_seconds"],
    )
    for label, cfg in variants.items():
        graph = build_mrpg(dataset, K=K, rng=w.seed, config=cfg)
        stats = filtering_stats(dataset, graph, w.r, w.k, verifier=verifier)
        t.add_row(
            variant=label,
            false_positives=stats.false_positives,
            build_seconds=graph.meta["build_seconds"],
        )
    t.notes.append(
        "paper shape: dropping either phase raises f; dropping both is worst"
    )
    return [t]


def run_ablation_nndescent(suite: str = "glove") -> list[ExperimentTable]:
    """Design-choice ablation: NNDescent+ vs plain NNDescent (§5.1).

    Quantifies what the VP-tree seeding and update-skipping buy: fewer
    update rounds, fewer total updates, less wall-clock — at equal or
    better AKNN recall.
    """
    from ..analysis.graph_stats import aknn_recall
    from ..graphs.adjacency import Graph
    from ..graphs.nndescent import nndescent
    from ..graphs.nndescent_plus import nndescent_plus

    w = default_workload(suite)
    dataset = get_dataset(w)
    K = suite_K(suite)

    t0 = time.perf_counter()
    plain = nndescent(dataset, K, rng=w.seed)
    plain_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plus = nndescent_plus(dataset, K, n_exact=0, rng=w.seed)
    plus_s = time.perf_counter() - t0

    def recall_of(knn_ids) -> float:
        g = Graph(dataset.n)
        for p in range(dataset.n):
            g.set_links(p, knn_ids[p])
        return aknn_recall(dataset, g, K, sample_size=100, rng=0)

    t = ExperimentTable(
        "ablation_nndescent",
        f"NNDescent vs NNDescent+ on {suite} (K={K})",
        ["builder", "seconds", "iterations", "total_updates", "recall"],
    )
    t.add_row(
        builder="nndescent", seconds=plain_s, iterations=plain.iterations,
        total_updates=sum(plain.updates_per_iter), recall=recall_of(plain.knn_ids),
    )
    t.add_row(
        builder="nndescent+", seconds=plus_s, iterations=plus.knn.iterations,
        total_updates=sum(plus.knn.updates_per_iter),
        recall=recall_of(plus.knn.knn_ids),
    )
    t.notes.append(
        "paper shape (Table 4): seeding + skipping cut updates and time "
        "without losing recall"
    )
    return [t]


def run_ablation_K(
    suite: str = "sift", Ks: tuple[int, ...] = (8, 16, 24)
) -> list[ExperimentTable]:
    """Design-choice ablation: graph degree K (§6 system parameter).

    Larger K buys reachability (fewer false positives) with a
    super-linear build cost and linear memory — the trade the paper
    navigates by fixing K=25 (40 on PAMAP2).
    """
    from ..graphs.base import build_graph

    base = default_workload(suite)
    dataset = get_dataset(base)
    verifier = get_verifier(base)
    t = ExperimentTable(
        "ablation_K",
        f"MRPG degree sensitivity on {suite}",
        ["K", "build_seconds", "index_mb", "false_positives", "detect_seconds"],
    )
    for K in Ks:
        graph = build_graph("mrpg", dataset, K=K, rng=base.seed)
        stats = filtering_stats(dataset, graph, base.r, base.k, verifier=verifier)
        res = graph_dod(dataset, graph, base.r, base.k, verifier=verifier,
                        rng=base.seed)
        t.add_row(
            K=K,
            build_seconds=graph.meta["build_seconds"],
            index_mb=graph.nbytes / (1024 * 1024),
            false_positives=stats.false_positives,
            detect_seconds=res.seconds,
        )
    return [t]


def run_ext_topn(suite: str = "sift", n_top: int = 10) -> list[ExperimentTable]:
    """Extension: top-n DOD with and without proximity-graph seeding.

    Applies the paper's graph idea to the ranking variant its
    Nested-loop baseline [Bay & Schwabacher] originally targeted.
    Graph seeding tightens each object's k-th-NN bound up front, so the
    ORCA cutoff prune fires earlier: same exact ranking, fewer distance
    computations.
    """
    from ..extensions.topn import top_n_outliers

    w = default_workload(suite)
    dataset = get_dataset(w)
    graph = get_graph(w, "mrpg")
    t = ExperimentTable(
        "ext_topn",
        f"Top-{n_top} outliers on {suite} (k={w.k})",
        ["variant", "seconds", "pairs", "pruned_objects"],
    )
    plain = top_n_outliers(dataset.view(), n_top, w.k, rng=w.seed)
    seeded = top_n_outliers(dataset.view(), n_top, w.k, graph=graph, rng=w.seed)
    t.add_row(variant="orca (no graph)", seconds=plain.seconds,
              pairs=plain.pairs, pruned_objects=plain.pruned_objects)
    t.add_row(variant="orca + mrpg seeding", seconds=seeded.seconds,
              pairs=seeded.pairs, pruned_objects=seeded.pruned_objects)
    if not np.allclose(np.sort(plain.scores), np.sort(seeded.scores)):
        raise AssertionError("top-n variants disagree — exactness violated")
    t.notes.append("both variants return the identical exact ranking")
    return [t]


def run_ablation_hnsw(suite: str = "glove") -> list[ExperimentTable]:
    """§3 claim check: HNSW's hierarchy buys nothing for DOD.

    The paper excludes HNSW because DOD traversals start *at* the query
    object, so the hierarchy's fast entry-point routing is dead weight.
    We test that claim: run Algorithm 1 on HNSW's layer-0 graph and on
    NSW (same memory class) and compare build cost, filter false
    positives and detection time.
    """
    from ..graphs.base import build_graph

    w = default_workload(suite)
    dataset = get_dataset(w)
    verifier = get_verifier(w)
    K = suite_K(suite)
    t = ExperimentTable(
        "ablation_hnsw",
        f"HNSW hierarchy vs flat NSW for DOD on {suite}",
        ["graph", "build_seconds", "false_positives", "detect_seconds"],
    )
    for name in ("nsw", "hnsw"):
        graph = build_graph(name, dataset, K=K, rng=w.seed)
        stats = filtering_stats(dataset, graph, w.r, w.k, verifier=verifier)
        res = graph_dod(dataset, graph, w.r, w.k, verifier=verifier, rng=w.seed)
        t.add_row(
            graph=name,
            build_seconds=graph.meta["build_seconds"],
            false_positives=stats.false_positives,
            detect_seconds=res.seconds,
        )
    t.notes.append(
        "paper's §3 position: the hierarchy helps entry-point routing, "
        "which DOD never does — layer 0 alone decides filter quality"
    )
    return [t]


def run_ext_dynamic(
    suite: str = "glove", batches: int = 5, churn: float = 0.1
) -> list[ExperimentTable]:
    """Extension: incremental maintenance vs rebuild-per-batch.

    Streams the suite into the detector in ``batches`` chunks with
    ``churn`` random removals between chunks, comparing the amortized
    incremental strategy against a full MRPG rebuild after every batch.
    Both are exact (Algorithm 1 verifies whatever the filter misses);
    the trade is maintenance time vs filter quality.
    """
    from ..datasets import make_objects
    from ..engine.mutable import MutableDetectionEngine

    w = default_workload(suite)
    spec = get_spec(suite)
    objects = make_objects(suite, n=w.n, seed=w.seed)
    if spec.metric != "edit":
        objects = np.asarray(objects)
    chunk = max(1, w.n // batches)

    t = ExperimentTable(
        "ext_dynamic",
        f"Incremental vs rebuild-per-batch on {suite} "
        f"({batches} batches, {int(100 * churn)}% churn)",
        ["strategy", "maintain_seconds", "detect_seconds", "outliers"],
    )
    for strategy in ("incremental", "rebuild"):
        det = MutableDetectionEngine(
            metric=spec.metric, K=suite_K(suite), seed=w.seed
        )
        # A fresh generator per strategy: both remove the same victims
        # (by position), so the live populations stay identical even
        # though rebuild() renumbers ids.
        gen = np.random.default_rng(w.seed + 1)
        maintain = 0.0
        last = None
        for lo in range(0, w.n, chunk):
            batch = objects[lo : lo + chunk]
            if spec.metric == "edit":
                batch = list(batch)
            t0 = time.perf_counter()
            det.insert(batch)
            if det.n_active > 2 * chunk:
                live = det.active_ids()
                victims = gen.choice(
                    live, size=max(1, int(churn * live.size)), replace=False
                )
                det.remove(victims.tolist())
            if strategy == "rebuild":
                det.rebuild()
            maintain += time.perf_counter() - t0
        t0 = time.perf_counter()
        last = det.detect(w.r, w.k)
        detect_s = time.perf_counter() - t0
        det.close()
        t.add_row(
            strategy=strategy,
            maintain_seconds=maintain,
            detect_seconds=detect_s,
            outliers=last.n_outliers,
        )
    rows = {row["strategy"]: row for row in t.rows}
    if rows["incremental"]["outliers"] != rows["rebuild"]["outliers"]:
        raise AssertionError("dynamic strategies disagree — exactness violated")
    t.notes.append("both strategies report the identical exact outlier count")
    return [t]


def run_ext_streaming(
    suite: str = "glove", window_frac: float = 0.25
) -> list[ExperimentTable]:
    """Extension: sliding-window monitoring vs per-report recomputation.

    Streams the suite once through :class:`SlidingWindowDOD` and
    compares against quadratic recomputation of every reported window —
    the amortization the streaming literature (§2's references) is
    about.
    """
    from ..streaming.window import SlidingWindowDOD, window_outliers_bruteforce

    w = default_workload(suite)
    dataset = get_dataset(w)
    window = max(8, int(window_frac * w.n))
    stream = np.random.default_rng(w.seed).permutation(dataset.n)

    view = dataset.view()
    t0 = time.perf_counter()
    monitor = SlidingWindowDOD(view, w.r, w.k, window)
    reports = monitor.run(stream, report_every=window // 2)
    stream_s = time.perf_counter() - t0
    stream_pairs = view.counter.pairs

    view2 = dataset.view()
    t0 = time.perf_counter()
    recompute_outliers = [
        window_outliers_bruteforce(view2, rep.window_ids, w.r, w.k)
        for rep in reports
    ]
    recompute_s = time.perf_counter() - t0
    recompute_pairs = view2.counter.pairs

    for rep, ref in zip(reports, recompute_outliers):
        if not np.array_equal(np.unique(rep.outliers), np.unique(ref)):
            raise AssertionError("streaming monitor disagrees with recomputation")

    t = ExperimentTable(
        "ext_streaming",
        f"Sliding-window monitoring on {suite} "
        f"(window={window}, {len(reports)} reports)",
        ["strategy", "seconds", "pairs"],
    )
    t.add_row(strategy="incremental monitor", seconds=stream_s, pairs=stream_pairs)
    t.add_row(strategy="recompute per report", seconds=recompute_s,
              pairs=recompute_pairs)
    t.notes.append("all reported windows verified identical to recomputation")
    return [t]


# -- registry -----------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., list[ExperimentTable]]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "ablation": run_ablation,
    "ablation_nndescent": run_ablation_nndescent,
    "ablation_k": run_ablation_K,
    "ablation_hnsw": run_ablation_hnsw,
    "ext_topn": run_ext_topn,
    "ext_dynamic": run_ext_dynamic,
    "ext_streaming": run_ext_streaming,
    "engine_sweep": run_engine_sweep,
}


def run_experiment(
    name: str, save_dir: "str | None" = None, **kwargs
) -> list[ExperimentTable]:
    """Run one named experiment; optionally persist its tables."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise ParameterError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        )
    tables = EXPERIMENTS[key](**kwargs)
    if save_dir is not None:
        for table in tables:
            table.save(save_dir)
    return tables
