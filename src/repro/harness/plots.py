"""ASCII line charts for the figure experiments.

The paper's Figures 6-10 are line charts; the bench harness saves the
underlying rows as tables (``results/fig*.txt``) and, through this
module, renders them as terminal-friendly charts
(``results/fig*_chart.txt``) so the shapes are eyeballable without a
plotting stack.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import ParameterError
from .tables import ExperimentTable

#: per-series marker characters, assigned in column order.
MARKERS = "ox+*#@%&"


def ascii_chart(
    xs: "list[float]",
    series: "dict[str, list[float]]",
    width: int = 64,
    height: int = 16,
    logy: bool = False,
    title: str = "",
    x_label: str = "x",
) -> str:
    """Render one chart: shared x axis, one marker per series."""
    if not series:
        raise ParameterError("ascii_chart: no series")
    n_points = len(xs)
    if n_points < 2:
        raise ParameterError("ascii_chart: need at least two x positions")
    for name, ys in series.items():
        if len(ys) != n_points:
            raise ParameterError(f"series {name!r} length mismatch")

    def transform(v: float) -> float:
        if logy:
            return math.log10(max(v, 1e-12))
        return v

    all_vals = [transform(v) for ys in series.values() for v in ys]
    lo, hi = min(all_vals), max(all_vals)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = MARKERS[s_idx % len(MARKERS)]
        for x, y in zip(xs, ys):
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((transform(y) - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    def fmt_axis(v: float) -> str:
        if logy:
            return f"1e{v:.1f}"
        return f"{v:.3g}"

    lines = []
    if title:
        lines.append(title)
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = fmt_axis(hi)
        elif row_idx == height - 1:
            label = fmt_axis(lo)
        else:
            label = ""
        lines.append(f"{label:>10s} |{''.join(row)}")
    lines.append(f"{'':>10s} +{'-' * width}")
    lines.append(f"{'':>10s}  {min(xs):<10g}{x_label:^{max(width - 20, 4)}}{max(xs):>10g}")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>10s}  legend: {legend}")
    return "\n".join(lines)


def render_figure(
    table: ExperimentTable,
    x_col: str,
    series_cols: "list[str]",
    group_col: str = "dataset",
    logy: bool = True,
) -> str:
    """Render a long-form figure table as one chart per group."""
    groups: dict = {}
    for row in table.rows:
        groups.setdefault(row.get(group_col, ""), []).append(row)
    charts = []
    for group, rows in groups.items():
        rows = sorted(rows, key=lambda r: r[x_col])
        xs = [float(r[x_col]) for r in rows]
        series = {
            col: [float(r[col]) for r in rows]
            for col in series_cols
            if all(r.get(col) is not None for r in rows)
        }
        charts.append(
            ascii_chart(
                xs,
                series,
                logy=logy,
                title=f"{table.exp_id} — {group}",
                x_label=x_col,
            )
        )
    return "\n\n".join(charts)
