"""Experiment harness: workloads, runners and table formatting."""

from .runner import (
    EXPERIMENTS,
    detect_with_baseline,
    detect_with_graph,
    engine_for,
    run_experiment,
)
from .plots import ascii_chart, render_figure
from .tables import NA, ExperimentTable, fmt_value
from .workloads import (
    BASELINE_NAMES,
    DEFAULT_K,
    GRAPH_NAMES,
    Workload,
    bench_scale,
    bench_suites,
    build_workers_env,
    clear_caches,
    default_workload,
    get_dataset,
    get_graph,
    get_verifier,
    hardware_gate,
    suite_K,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "detect_with_graph",
    "detect_with_baseline",
    "engine_for",
    "ExperimentTable",
    "fmt_value",
    "NA",
    "ascii_chart",
    "render_figure",
    "Workload",
    "default_workload",
    "get_dataset",
    "get_graph",
    "get_verifier",
    "bench_scale",
    "bench_suites",
    "build_workers_env",
    "hardware_gate",
    "clear_caches",
    "suite_K",
    "GRAPH_NAMES",
    "BASELINE_NAMES",
    "DEFAULT_K",
]
