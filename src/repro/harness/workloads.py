"""Benchmark workloads and artifact caching.

A :class:`Workload` pins one experiment input: suite, cardinality,
``(r, k)`` and seed.  The module-level caches keep datasets, graphs and
verifiers shared across benchmark files within one pytest session, so
e.g. the graphs built for Table 3 (pre-processing time) are the same
objects Table 5 (detection time) and Table 7 (false positives) measure
— mirroring the paper's offline/online split.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiply every suite's default cardinality
  (default 1.0; use e.g. 0.25 for a quick pass).
* ``REPRO_BENCH_SUITES`` — comma-separated suite subset or ``all``
  (figure sweeps default to a three-suite subset to bound wall time).
* ``REPRO_BUILD_WORKERS`` — build every cached graph on the
  process-parallel path with this many workers (unset: the legacy
  sequential build).  The benchmarks' ``--build-workers`` flag sets it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from ..core.verify import Verifier
from ..data import Dataset
from ..datasets import SUITE_NAMES, get_spec, load_suite
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph
from ..graphs.base import build_graph

#: graph builders compared in the paper's §6, in its display order.
GRAPH_NAMES: tuple[str, ...] = ("nsw", "kgraph", "mrpg-basic", "mrpg")
#: state-of-the-art baselines, paper display order.
BASELINE_NAMES: tuple[str, ...] = ("nested-loop", "snif", "dolphin", "vptree")

#: graph degree used by the experiments (paper: K=25, 40 for PAMAP2 at
#: million scale; scaled down with the cardinalities).
DEFAULT_K = 16
_SUITE_K = {"pamap2": 20}


def bench_scale() -> float:
    """Global cardinality multiplier from ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def hardware_gate(
    *,
    full_scale: bool,
    required_cores: int = 1,
    cpus: "int | None" = None,
    env: "dict | None" = None,
) -> dict:
    """Decide whether a hardware-scaling assertion may run, auditable.

    Several benchmarks carry acceptance assertions that are *hardware*
    claims — e.g. the sharded engine's >=1.8x-at-4-workers headline only
    applies where 4 real cores exist.  The committed baselines must
    record whether such an assertion actually fired, or a number
    measured on a 1-CPU container silently masquerades as a tested
    claim.  This helper centralises the gate and returns the fields
    every ``BENCH_*.json`` embeds verbatim:

    ``cores_available``
        ``os.cpu_count()`` (or the injected override).
    ``required_cores`` / ``full_scale``
        The assertion's preconditions, for the record.
    ``assertion_ran``
        True only when the workload ran at full scale, enough cores
        exist, and ``REPRO_BENCH_NO_ASSERT`` is unset.

    ``cpus`` and ``env`` exist for unit tests; production callers pass
    neither.
    """
    if required_cores < 1:
        raise ParameterError(
            f"required_cores must be >= 1, got {required_cores}"
        )
    if env is None:
        env = os.environ
    if cpus is None:
        cpus = os.cpu_count() or 1
    ran = (
        bool(full_scale)
        and int(cpus) >= int(required_cores)
        and not env.get("REPRO_BENCH_NO_ASSERT")
    )
    return {
        "cores_available": int(cpus),
        "required_cores": int(required_cores),
        "full_scale": bool(full_scale),
        "assertion_ran": bool(ran),
    }


def build_workers_env() -> "int | None":
    """Graph-build worker count from ``REPRO_BUILD_WORKERS``.

    ``None`` (unset/empty) keeps the legacy sequential build; any
    integer >= 1 selects the worker-count-invariant parallel path.
    """
    raw = os.environ.get("REPRO_BUILD_WORKERS", "").strip()
    if not raw:
        return None
    workers = int(raw)
    if workers < 1:
        raise ParameterError(
            f"REPRO_BUILD_WORKERS must be >= 1, got {raw!r}"
        )
    return workers


def bench_suites(default: "tuple[str, ...] | None" = None) -> tuple[str, ...]:
    """Suite subset from ``REPRO_BENCH_SUITES`` (or the given default)."""
    raw = os.environ.get("REPRO_BENCH_SUITES", "")
    if raw.strip().lower() in ("", "default"):
        return tuple(default) if default is not None else tuple(SUITE_NAMES)
    if raw.strip().lower() == "all":
        return tuple(SUITE_NAMES)
    return tuple(s.strip().lower() for s in raw.split(",") if s.strip())


def suite_K(suite: str) -> int:
    """Graph degree for a suite (paper uses a larger K for PAMAP2)."""
    return _SUITE_K.get(suite, DEFAULT_K)


@dataclass(frozen=True)
class Workload:
    """One experiment input (hashable: used as a cache key)."""

    suite: str
    n: int
    r: float
    k: int
    seed: int = 0

    def scaled(self, rate: float) -> "Workload":
        """The same workload at a sampled-down cardinality (Figs. 6-7)."""
        return replace(self, n=max(32, int(round(self.n * rate))))


def default_workload(suite: str, scale: float | None = None) -> Workload:
    """The suite's Table 2-style default workload, globally scaled."""
    spec = get_spec(suite)
    if scale is None:
        scale = bench_scale()
    n = max(64, int(round(spec.default_n * scale)))
    return Workload(suite=suite, n=n, r=spec.default_r, k=spec.default_k)


# -- caches -------------------------------------------------------------------

_dataset_cache: dict[tuple[str, int, int], Dataset] = {}
_graph_cache: dict[tuple[str, int, int, str, int, int], Graph] = {}
_verifier_cache: dict[tuple[str, int, int], Verifier] = {}


def get_dataset(w: Workload) -> Dataset:
    """Dataset for a workload (cached per suite/n/seed)."""
    key = (w.suite, w.n, w.seed)
    if key not in _dataset_cache:
        dataset, _ = load_suite(w.suite, n=w.n, seed=w.seed)
        _dataset_cache[key] = dataset
    return _dataset_cache[key]


def get_graph(w: Workload, builder: str, K: int | None = None) -> Graph:
    """Proximity graph for a workload (cached; build time in meta)."""
    if K is None:
        K = suite_K(w.suite)
    workers = build_workers_env()
    key = (w.suite, w.n, w.seed, builder, K, workers)
    if key not in _graph_cache:
        dataset = get_dataset(w)
        _graph_cache[key] = build_graph(
            builder, dataset, K=K, rng=w.seed, build_workers=workers
        )
    return _graph_cache[key]


def get_verifier(w: Workload) -> Verifier:
    """Exact-Counting verifier per the suite's paper strategy (cached)."""
    key = (w.suite, w.n, w.seed)
    if key not in _verifier_cache:
        spec = get_spec(w.suite)
        _verifier_cache[key] = Verifier(
            get_dataset(w), strategy=spec.verify, rng=w.seed
        )
    return _verifier_cache[key]


def clear_caches() -> None:
    """Drop all cached artifacts (tests use this to bound memory)."""
    _dataset_cache.clear()
    _graph_cache.clear()
    _verifier_cache.clear()
