"""Plain-text experiment tables.

Each experiment produces an :class:`ExperimentTable`: a titled grid of
rows that renders in the same orientation as the paper's table or
figure, plus a machine-readable ``rows`` list the tests can assert on.
``NA`` entries mirror the paper's over-budget markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

NA = "NA"


def fmt_value(value: Any) -> str:
    """Render one cell: floats get 3 significant decimals, NA passes."""
    if value is None:
        return NA
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A titled table of experiment measurements."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **cells: Any) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def format(self) -> str:
        """Aligned text rendering."""
        header = [*self.columns]
        grid = [[fmt_value(row.get(c)) for c in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in grid)) if grid else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.exp_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * w for w in widths))
        for r in grid:
            lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(header))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def save(self, directory: "str | Path") -> Path:
        """Write the formatted table under ``directory`` and return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.exp_id}.txt"
        path.write_text(self.format() + "\n", encoding="utf-8")
        return path

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()
