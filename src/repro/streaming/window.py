"""Exact sliding-window DOD over a data stream.

The paper restricts itself to static, memory-resident data and defers
dynamic data to the streaming literature: "If P is dynamic, we can use
one of the state-of-the-art algorithms, e.g., [22, 32]" (§2).  This
module implements that substrate: exact distance-based outlier
monitoring over a count-based sliding window, following the structure
of exact-STORM [Angiulli & Fassetti, CIKM'07] that those works build
on.

Per object the monitor stores two things:

* ``succ`` — the number of *succeeding* neighbors (arrived later).
  Succeeding neighbors expire after the object itself, so this count
  never needs decrementing: expiry is handled by construction.
* the arrival times of its ``k`` most recent *preceding* neighbors.
  Preceding neighbors expire oldest-first, so the k most recent are
  exactly the ones that can still be valid; counting those newer than
  ``t - W`` undercounts nothing (see ``test_streaming`` for the
  property check against a brute-force oracle).

An object is an outlier of the current window iff
``succ + #valid_preceding < k`` — the same (r, k) semantics as the
static problem, evaluated over the window content.

The stream is expressed as an order over a prepared
:class:`~repro.data.Dataset` (ids), so every metric in the library
works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError


@dataclass
class WindowReport:
    """Outliers of one reported window."""

    time: int
    window_ids: np.ndarray
    outliers: np.ndarray

    @property
    def n_outliers(self) -> int:
        return int(self.outliers.size)


class SlidingWindowDOD:
    """Exact (r, k)-outlier monitoring over a count-based sliding window.

    Parameters
    ----------
    dataset:
        Backing storage; stream elements are dataset ids.
    r, k:
        The DOD thresholds (Definition 2 of the paper), applied to the
        current window population.
    window:
        Number of most recent arrivals forming the window.
    """

    def __init__(self, dataset: Dataset, r: float, k: int, window: int):
        if r < 0:
            raise ParameterError(f"radius must be non-negative, got {r}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if window < 2:
            raise ParameterError(f"window must be >= 2, got {window}")
        self.dataset = dataset
        self.r = float(r)
        self.k = int(k)
        self.window = int(window)
        self.time = 0
        # Ring buffers indexed by slot = arrival % window.
        self._ids = np.full(window, -1, dtype=np.int64)
        self._arrivals = np.full(window, -1, dtype=np.int64)
        self._succ = np.zeros(window, dtype=np.int64)
        self._prec: list[list[int]] = [[] for _ in range(window)]

    # -- stream interface -----------------------------------------------------

    def append(self, obj_id: int) -> None:
        """Advance the stream by one object."""
        if not 0 <= obj_id < self.dataset.n:
            raise ParameterError(f"object id {obj_id} out of range")
        slot = self.time % self.window
        occupied = np.flatnonzero(self._arrivals >= 0)
        occupied = occupied[occupied != slot]  # the expiring slot drops out
        if occupied.size:
            members = self._ids[occupied]
            d = self.dataset.dist_many(int(obj_id), members, bound=self.r)
            hit_slots = occupied[d <= self.r]
            # Found neighbors precede the new object; it succeeds them.
            self._succ[hit_slots] += 1
            prec_times = np.sort(self._arrivals[hit_slots])[-self.k :]
            prec = prec_times.tolist()
        else:
            prec = []
        self._ids[slot] = obj_id
        self._arrivals[slot] = self.time
        self._succ[slot] = 0
        self._prec[slot] = prec
        self.time += 1

    def extend(self, obj_ids) -> None:
        """Append a sequence of objects."""
        for obj_id in obj_ids:
            self.append(int(obj_id))

    # -- queries ----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current window population."""
        return int(np.count_nonzero(self._arrivals >= 0))

    def window_ids(self) -> np.ndarray:
        """Dataset ids currently in the window, oldest first."""
        occupied = np.flatnonzero(self._arrivals >= 0)
        order = np.argsort(self._arrivals[occupied], kind="stable")
        return self._ids[occupied[order]].copy()

    def neighbor_count(self, slot: int) -> int:
        """Valid neighbor count of the object in ``slot`` (internal)."""
        horizon = self.time - self.window
        valid_prec = sum(1 for t in self._prec[slot] if t >= max(horizon, 0))
        return int(self._succ[slot]) + valid_prec

    def outliers(self) -> np.ndarray:
        """Dataset ids of the current window's outliers (sorted)."""
        horizon = max(self.time - self.window, 0)
        out = []
        for slot in np.flatnonzero(self._arrivals >= 0):
            slot = int(slot)
            valid_prec = sum(1 for t in self._prec[slot] if t >= horizon)
            if self._succ[slot] + valid_prec < self.k:
                out.append(int(self._ids[slot]))
        return np.asarray(sorted(out), dtype=np.int64)

    def report(self) -> WindowReport:
        """Snapshot of the current window and its outliers."""
        return WindowReport(
            time=self.time, window_ids=self.window_ids(), outliers=self.outliers()
        )

    def run(
        self, stream, report_every: int | None = None
    ) -> list[WindowReport]:
        """Consume a stream of ids, reporting every ``report_every`` steps.

        ``report_every`` defaults to the window size (tumbling reports).
        """
        if report_every is None:
            report_every = self.window
        if report_every < 1:
            raise ParameterError(f"report_every must be >= 1, got {report_every}")
        reports = []
        for obj_id in stream:
            self.append(int(obj_id))
            if self.time % report_every == 0:
                reports.append(self.report())
        return reports


def window_outliers_bruteforce(
    dataset: Dataset, window_ids: np.ndarray, r: float, k: int
) -> np.ndarray:
    """Oracle: exact outliers of one window by quadratic recomputation."""
    window_ids = np.asarray(window_ids, dtype=np.int64)
    out = []
    for p in window_ids:
        d = dataset.dist_many(int(p), window_ids, bound=r)
        count = int(np.count_nonzero(d <= r)) - 1  # exclude self
        if count < k:
            out.append(int(p))
    return np.asarray(sorted(out), dtype=np.int64)
