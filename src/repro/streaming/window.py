"""Exact sliding-window DOD over a data stream — on the mutable engine.

The paper restricts itself to static, memory-resident data and defers
dynamic data to the streaming literature: "If P is dynamic, we can use
one of the state-of-the-art algorithms, e.g., [22, 32]" (§2).  This
module implements that substrate, following the (r, k) accounting of
exact-STORM [Angiulli & Fassetti, CIKM'07] that those works build on —
but instead of private succeeding/preceding counters, the window drives
``insert``/``remove`` through a
:class:`~repro.engine.mutable.MutableDetectionEngine` whose evidence
cache is *pinned* at the window's radius:

* each arrival's single range scan (the same scan exact-STORM performs)
  repairs the cache — the newcomer gets its exact neighbor count, every
  member within ``r`` gets ``+1``;
* each expiry is repaired from bookkeeping alone: because the window is
  count-based, an expiring object's within-``r`` neighbors are exactly
  the later arrivals that found it during *their* scans (its
  "succeeding neighbors"), so no distances are recomputed;
* :meth:`outliers` is then a pure cache decision — the engine's
  ``detect`` finds every member's count already exact.

The stream is expressed as an order over a prepared
:class:`~repro.data.Dataset` (ids), so every metric in the library
works unchanged; repeated ids are distinct window members, as before.
Distance evaluations the engine performs are mirrored onto the caller's
dataset counter, keeping cost accounting comparable with the historical
implementation (see ``benchmarks/bench_ext_streaming.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError

#: incremental-graph degree of the window's engine.  Quality only —
#: pinned-radius queries never touch the graph, so a small degree keeps
#: the per-arrival linking work negligible.
_WINDOW_K = 8

#: per-member cap on the succeeding-neighbor list.  A dense window
#: (radius at the window diameter) would otherwise hold O(window^2)
#: ids; past the cap the list is abandoned and that member's expiry
#: falls back to the engine's repair scan — one extra window-sized
#: distance pass, exactness unchanged.
_SUCC_CAP = 4096


@dataclass
class WindowReport:
    """Outliers of one reported window."""

    time: int
    window_ids: np.ndarray
    outliers: np.ndarray

    @property
    def n_outliers(self) -> int:
        return int(self.outliers.size)


class SlidingWindowDOD:
    """Exact (r, k)-outlier monitoring over a count-based sliding window.

    Parameters
    ----------
    dataset:
        Backing storage; stream elements are dataset ids.
    r, k:
        The DOD thresholds (Definition 2 of the paper), applied to the
        current window population.
    window:
        Number of most recent arrivals forming the window.
    shards, workers:
        With ``shards > 1`` the window drives a
        :class:`~repro.engine.mutable_sharded.MutableShardedDetectionEngine`
        instead of the single-process engine: arrivals route to the
        least-loaded shard, each shard repairs its own pinned-radius
        evidence, and reports come from the exact merge.  Same
        answers, bigger windows per wall-clock second once workers are
        real cores.
    """

    def __init__(
        self,
        dataset: Dataset,
        r: float,
        k: int,
        window: int,
        shards: int = 1,
        workers: "int | None" = None,
    ):
        if r < 0:
            raise ParameterError(f"radius must be non-negative, got {r}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        if window < 2:
            raise ParameterError(f"window must be >= 2, got {window}")
        self.dataset = dataset
        self.r = float(r)
        self.k = int(k)
        self.window = int(window)
        self.time = 0
        from ..engine.protocol import create_engine

        self._engine = create_engine(
            None, metric=dataset.metric, K=_WINDOW_K, seed=0, mutable=True,
            shards=int(shards), workers=workers, pinned=(self.r,),
        )
        self._mirrored_pairs = 0
        # Ring buffers indexed by slot = arrival % window.
        self._ids = np.full(window, -1, dtype=np.int64)
        self._arrivals = np.full(window, -1, dtype=np.int64)
        self._engine_ids = np.full(window, -1, dtype=np.int64)
        # engine id -> engine ids of later arrivals within r (its
        # complete live neighborhood at expiry time), or None once the
        # list overflowed _SUCC_CAP (expiry then rescans).
        self._succ: dict[int, "list[int] | None"] = {}

    # -- engine plumbing ------------------------------------------------------

    def _mirror_pairs(self) -> None:
        """Forward the engine's distance work to the caller's counter."""
        delta = self._engine.pairs - self._mirrored_pairs
        if delta:
            self.dataset.counter.add(delta)
            self._mirrored_pairs = self._engine.pairs

    def _maybe_vacuum(self) -> None:
        """Renumber the engine once tombstones dominate its id space."""
        if self._engine.n_total <= 2 * self.window + 64:
            return
        remap = self._engine.vacuum()
        occupied = self._arrivals >= 0
        self._engine_ids[occupied] = remap[self._engine_ids[occupied]]
        self._succ = {
            int(remap[eid]): (
                None if succ is None else [int(remap[v]) for v in succ]
            )
            for eid, succ in self._succ.items()
        }

    # -- stream interface -----------------------------------------------------

    def append(self, obj_id: int) -> None:
        """Advance the stream by one object."""
        obj_id = int(obj_id)
        if not 0 <= obj_id < self.dataset.n:
            raise ParameterError(f"object id {obj_id} out of range")
        slot = self.time % self.window
        if self._arrivals[slot] >= 0:
            # The expiring member's within-r neighbors are exactly its
            # succeeding arrivals — all still live in a count-based
            # window — so the cache repair needs no distance scan
            # (unless the list overflowed; then the engine rescans).
            victim = int(self._engine_ids[slot])
            succ = self._succ.pop(victim, [])
            self._engine.remove(
                [victim],
                known_neighbors=None if succ is None else {
                    victim: {self.r: np.asarray(succ, dtype=np.int64)}
                },
            )
        new_id = int(self._engine.insert([self.dataset.get(obj_id)])[0])
        within = self._engine.last_insert_neighbors[0].get(
            self.r, np.empty(0, dtype=np.int64)
        )
        for q in within:
            succ = self._succ[int(q)]
            if succ is None:
                continue
            if len(succ) >= _SUCC_CAP:
                self._succ[int(q)] = None
            else:
                succ.append(new_id)
        self._succ[new_id] = []
        self._ids[slot] = obj_id
        self._arrivals[slot] = self.time
        self._engine_ids[slot] = new_id
        self.time += 1
        self._maybe_vacuum()
        self._mirror_pairs()

    def extend(self, obj_ids) -> None:
        """Append a sequence of objects."""
        for obj_id in obj_ids:
            self.append(int(obj_id))

    # -- queries ----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current window population."""
        return int(np.count_nonzero(self._arrivals >= 0))

    def window_ids(self) -> np.ndarray:
        """Dataset ids currently in the window, oldest first."""
        occupied = np.flatnonzero(self._arrivals >= 0)
        order = np.argsort(self._arrivals[occupied], kind="stable")
        return self._ids[occupied[order]].copy()

    def neighbor_count(self, slot: int) -> int:
        """Valid neighbor count of the object in ``slot`` (diagnostic)."""
        if self._arrivals[slot] < 0:
            raise ParameterError(f"slot {slot} is empty")
        others = np.flatnonzero(self._arrivals >= 0)
        others = others[others != slot]
        if others.size == 0:
            return 0
        d = self.dataset.dist_many(
            int(self._ids[slot]), self._ids[others], bound=self.r
        )
        return int(np.count_nonzero(d <= self.r))

    def outliers(self) -> np.ndarray:
        """Dataset ids of the current window's outliers (sorted).

        A repeated dataset id appears once per window membership, as in
        the historical counter-based implementation.
        """
        if self.size == 0:
            return np.empty(0, dtype=np.int64)
        result = self._engine.detect(self.r, self.k)
        self._mirror_pairs()
        engine_to_dataset = {
            int(self._engine_ids[s]): int(self._ids[s])
            for s in np.flatnonzero(self._arrivals >= 0)
        }
        return np.sort(
            np.asarray(
                [engine_to_dataset[int(p)] for p in result.outliers],
                dtype=np.int64,
            )
        )

    def report(self) -> WindowReport:
        """Snapshot of the current window and its outliers."""
        return WindowReport(
            time=self.time, window_ids=self.window_ids(), outliers=self.outliers()
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut down the backing engine (worker processes with ``shards``)."""
        self._engine.close()

    def __enter__(self) -> "SlidingWindowDOD":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(
        self, stream, report_every: int | None = None
    ) -> list[WindowReport]:
        """Consume a stream of ids, reporting every ``report_every`` steps.

        ``report_every`` defaults to the window size (tumbling reports).
        """
        if report_every is None:
            report_every = self.window
        if report_every < 1:
            raise ParameterError(f"report_every must be >= 1, got {report_every}")
        reports = []
        for obj_id in stream:
            self.append(int(obj_id))
            if self.time % report_every == 0:
                reports.append(self.report())
        return reports


def window_outliers_bruteforce(
    dataset: Dataset, window_ids: np.ndarray, r: float, k: int
) -> np.ndarray:
    """Oracle: exact outliers of one window by quadratic recomputation."""
    window_ids = np.asarray(window_ids, dtype=np.int64)
    out = []
    for p in window_ids:
        d = dataset.dist_many(int(p), window_ids, bound=r)
        count = int(np.count_nonzero(d <= r)) - 1  # exclude self
        if count < k:
            out.append(int(p))
    return np.asarray(sorted(out), dtype=np.int64)
