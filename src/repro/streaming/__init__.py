"""Sliding-window DOD — the dynamic-data substrate the paper defers to (§2)."""

from .window import SlidingWindowDOD, WindowReport, window_outliers_bruteforce

__all__ = ["SlidingWindowDOD", "WindowReport", "window_outliers_bruteforce"]
