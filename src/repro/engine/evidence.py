"""The per-object evidence cache behind cross-query reuse.

Every detection query proves count facts about every object: the filter
proves *lower bounds* (Lemma 1 — Greedy-Counting never overstates), the
verifier proves lower bounds that are *exact* whenever early termination
did not fire, and MRPG's stored exact-K'NN lists (§5.5, Property 3)
yield exact counts at any radius.  All of these are monotone in ``r``:

* a lower bound proved at radius ``r`` holds at every ``r' >= r``
  (the neighbor ball only grows), and
* an exact count at radius ``r`` upper-bounds the count at every
  ``r' <= r`` (the ball only shrinks).

:class:`EvidenceCache` stores these facts as dense per-radius bound
arrays, so deciding a whole dataset against a new ``(r, k)`` query is a
handful of vectorised max/min/compare passes — no graph traversal, no
distance computation.  Objects whose interval ``[lb, ub]`` still
straddles ``k`` are the only ones the engine has to touch.

Bound folding is *cumulative*: radii are kept sorted and the running
max (lb) / min (ub) folds are materialised lazily, so a query touches
only the stored radii its own radius actually depends on — radii
``<= r`` for lower bounds, radii ``>= r`` for upper bounds — instead
of re-scanning every stored radius per call.

The monotonicity laws extend to *mutations* of the underlying
collection, which is what makes the cache repairable instead of
disposable (see ``docs/incremental.md``):

* inserting an object can only **raise** neighbor counts, and only for
  objects within its radius — so every lower bound stays valid as-is,
  and both bounds of the touched objects move up by exactly one
  (:meth:`apply_insert`);
* deleting an object can only **lower** counts, again only within its
  radius — so every upper bound stays valid as-is, and the touched
  bounds move down by exactly one (:meth:`apply_delete`).

A budgeted eviction policy (``max_radii``) folds the most-dominated
radius of a side into its neighbor when a serving process accumulates
more distinct radii than its memory cap allows: lower bounds fold
upward (a bound at ``r`` is a bound at every larger radius), upper
bounds fold downward.  Eviction loses tightness, never soundness.
"""

from __future__ import annotations

import numpy as np

from ..core.result import ObjectEvidence
from ..exceptions import ParameterError

#: sentinel upper bound: "nothing known" (any count fits below it).
NO_BOUND = np.iinfo(np.int64).max


def build_delete_evidence(
    dataset,
    victims,
    survivors: np.ndarray,
    radii,
    known: "dict | None",
    n_total: int,
) -> dict:
    """Reduce a delete batch to :meth:`EvidenceCache.apply_delete_batch` form.

    The one copy of the batched delete-repair law, shared by the
    single-process engine and every shard worker: victims without
    supplied bookkeeping are ranged against ``survivors`` in one
    ``pair_dist`` sweep, victims with ``known`` per-radius neighbor
    lists contribute those instead, and a radius any victim lacks
    evidence for is omitted (the caller's lower-bound row there must
    be dropped).  Returns ``{r: (touched_ids, dec)}``.
    """
    known = known or {}
    radii = list(radii)
    victims = [int(v) for v in victims]
    scan = np.asarray(
        [v for v in victims if known.get(v) is None], dtype=np.int64
    )
    dec = {r: np.zeros(n_total, dtype=np.int64) for r in radii}
    covered = dict.fromkeys(radii, True)
    if scan.size and survivors.size and radii:
        # Only per-radius verdicts are consumed; passing every
        # maintained radius keeps the sweep verdict-faithful at each
        # one under screening backends while still early-abandoning at
        # the largest.
        D = dataset.pair_dist(
            np.repeat(scan, survivors.size),
            np.tile(survivors, scan.size),
            bound=tuple(radii), consistent=True,
        ).reshape(scan.size, survivors.size)
        for r in radii:
            dec[r][survivors] += (D <= r).sum(axis=0)
    for v in victims:
        listed = known.get(v)
        if listed is None:
            continue
        listed = {
            float(r): np.asarray(w, dtype=np.int64) for r, w in listed.items()
        }
        for r in radii:
            within = listed.get(r)
            if within is None:
                covered[r] = False
            elif within.size:
                np.add.at(dec[r], within, 1)
    evidence = {}
    for r in radii:
        if covered[r]:
            touched = np.flatnonzero(dec[r])
            evidence[r] = (touched, dec[r][touched])
    return evidence


class EvidenceCache:
    """Accumulated per-object neighbor-count bounds, indexed by radius.

    ``lower_bounds(r)`` / ``upper_bounds(r)`` fold every relevant stored
    radius through the monotonicity rules above, returning the tightest
    bounds provable at ``r`` from everything any past query learned.

    Parameters
    ----------
    n:
        Number of objects covered (rows per bound array).
    max_radii:
        Optional per-side budget on distinct stored radii.  When a new
        radius would exceed it, the closest pair of adjacent radii is
        merged (lb folds into the larger, ub into the smaller).
    """

    def __init__(self, n: int, max_radii: "int | None" = None):
        if n < 1:
            raise ParameterError(f"cache needs at least one object, got n={n}")
        if max_radii is not None and max_radii < 1:
            raise ParameterError(f"max_radii must be >= 1, got {max_radii}")
        self.n = int(n)
        self.max_radii = max_radii
        self._lb: dict[float, np.ndarray] = {}
        self._ub: dict[float, np.ndarray] = {}
        # Lazily-materialised cumulative folds over the sorted radii:
        # _lb_cum[i] = elementwise max of the lb rows at radii[0..i],
        # valid for i < _lb_valid; _ub_cum[i] = elementwise min of the
        # ub rows at radii[i..m-1], valid for i >= _ub_valid_from.
        self._lb_radii: np.ndarray = np.empty(0, dtype=np.float64)
        self._lb_cum: list[np.ndarray] = []
        self._lb_valid = 0
        self._ub_radii: np.ndarray = np.empty(0, dtype=np.float64)
        self._ub_cum: list[np.ndarray] = []
        self._ub_valid_from = 0

    # -- fold bookkeeping --------------------------------------------------

    def _touch_lb(self, r: float, new: bool) -> None:
        """Invalidate lb folds affected by a write at radius ``r``."""
        if new:
            self._lb_radii = np.asarray(sorted(self._lb), dtype=np.float64)
            self._lb_valid = 0
        else:
            idx = int(np.searchsorted(self._lb_radii, r))
            self._lb_valid = min(self._lb_valid, idx)

    def _touch_ub(self, r: float, new: bool) -> None:
        """Invalidate ub folds affected by a write at radius ``r``."""
        if new:
            self._ub_radii = np.asarray(sorted(self._ub), dtype=np.float64)
            self._ub_cum = [None] * self._ub_radii.size  # type: ignore[list-item]
            self._ub_valid_from = self._ub_radii.size
        else:
            idx = int(np.searchsorted(self._ub_radii, r))
            self._ub_valid_from = max(self._ub_valid_from, idx + 1)

    def _invalidate_folds(self) -> None:
        """Drop all fold state (bulk mutation: repair, grow, evict)."""
        self._lb_radii = np.asarray(sorted(self._lb), dtype=np.float64)
        self._lb_cum = []
        self._lb_valid = 0
        self._ub_radii = np.asarray(sorted(self._ub), dtype=np.float64)
        self._ub_cum = [None] * self._ub_radii.size  # type: ignore[list-item]
        self._ub_valid_from = self._ub_radii.size

    # -- queries -----------------------------------------------------------

    @property
    def radii(self) -> list[float]:
        """Every radius with recorded evidence, ascending."""
        return sorted(set(self._lb) | set(self._ub))

    def lower_bounds(self, r: float) -> np.ndarray:
        """Tightest provable lower bound per object at radius ``r``.

        Cost is proportional to the *new* stored radii ``<= r`` since
        the last call (the cumulative fold is extended, not rebuilt).
        """
        radii = self._lb_radii
        idx = int(np.searchsorted(radii, float(r), side="right")) - 1
        if idx < 0:
            return np.zeros(self.n, dtype=np.int64)
        del self._lb_cum[self._lb_valid:]
        while self._lb_valid <= idx:
            i = self._lb_valid
            row = self._lb[float(radii[i])]
            self._lb_cum.append(
                row.copy() if i == 0 else np.maximum(self._lb_cum[i - 1], row)
            )
            self._lb_valid += 1
        return self._lb_cum[idx].copy()

    def upper_bounds(self, r: float) -> np.ndarray:
        """Tightest provable upper bound per object at radius ``r``.

        Entries without evidence are :data:`NO_BOUND`.  Cost is
        proportional to the new stored radii ``>= r`` since the last
        call.
        """
        radii = self._ub_radii
        m = radii.size
        idx = int(np.searchsorted(radii, float(r), side="left"))
        if idx >= m:
            return np.full(self.n, NO_BOUND, dtype=np.int64)
        while self._ub_valid_from > idx:
            i = self._ub_valid_from - 1
            row = self._ub[float(radii[i])]
            self._ub_cum[i] = (
                row.copy() if i == m - 1 else np.minimum(self._ub_cum[i + 1], row)
            )
            self._ub_valid_from -= 1
        return self._ub_cum[idx].copy()

    # -- updates -----------------------------------------------------------

    def _lb_row(self, r: float) -> np.ndarray:
        row = self._lb.get(r)
        if row is None:
            row = self._lb[r] = np.zeros(self.n, dtype=np.int64)
            self._touch_lb(r, new=True)
        else:
            self._touch_lb(r, new=False)
        return row

    def _ub_row(self, r: float) -> np.ndarray:
        row = self._ub.get(r)
        if row is None:
            row = self._ub[r] = np.full(self.n, NO_BOUND, dtype=np.int64)
            self._touch_ub(r, new=True)
        else:
            self._touch_ub(r, new=False)
        return row

    def record(
        self,
        r: float,
        ids: np.ndarray,
        counts: np.ndarray,
        exact_mask: np.ndarray | None = None,
    ) -> None:
        """Record proven counts for ``ids`` at radius ``r``.

        ``counts`` are lower bounds; where ``exact_mask`` is set they are
        true counts and double as upper bounds.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        counts = np.asarray(counts, dtype=np.int64)
        np.maximum.at(self._lb_row(r), ids, counts)
        if exact_mask is not None:
            exact_mask = np.asarray(exact_mask, dtype=bool)
            if exact_mask.any():
                np.minimum.at(self._ub_row(r), ids[exact_mask], counts[exact_mask])
        self._enforce_budget()

    def record_bounds(
        self,
        r: float,
        ids: np.ndarray,
        lb_counts: np.ndarray | None = None,
        ub_counts: np.ndarray | None = None,
    ) -> None:
        """Record independent lower/upper bounds for ``ids`` at ``r``.

        The general form of :meth:`record`, used to transplant bounds
        between caches (e.g. folding a compacted engine's evidence back
        into the full-id-space cache of a mutable engine).  Upper
        bounds equal to :data:`NO_BOUND` are ignored.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        if lb_counts is not None:
            lb_counts = np.asarray(lb_counts, dtype=np.int64)
            np.maximum.at(self._lb_row(r), ids, lb_counts)
        if ub_counts is not None:
            ub_counts = np.asarray(ub_counts, dtype=np.int64)
            known = ub_counts != NO_BOUND
            if known.any():
                np.minimum.at(self._ub_row(r), ids[known], ub_counts[known])
        self._enforce_budget()

    def ingest(self, evidence: ObjectEvidence) -> None:
        """Absorb the per-object evidence of a finished detection run."""
        if evidence.n != self.n:
            raise ParameterError(
                f"evidence covers {evidence.n} objects, cache holds {self.n}"
            )
        self.record(
            evidence.r,
            np.arange(self.n, dtype=np.int64),
            evidence.lower_bounds,
            evidence.exact_mask,
        )

    def clear(self) -> None:
        self._lb.clear()
        self._ub.clear()
        self._invalidate_folds()

    # -- mutation repair ---------------------------------------------------

    def grow(self, n_new: int) -> None:
        """Extend every bound row for objects appended to the collection.

        New rows carry the vacuous bounds (lb 0, ub :data:`NO_BOUND`).
        """
        if n_new < self.n:
            raise ParameterError(
                f"cannot shrink cache from {self.n} to {n_new} objects"
            )
        if n_new == self.n:
            return
        pad = n_new - self.n
        for r, row in self._lb.items():
            self._lb[r] = np.concatenate([row, np.zeros(pad, dtype=np.int64)])
        for r, row in self._ub.items():
            self._ub[r] = np.concatenate(
                [row, np.full(pad, NO_BOUND, dtype=np.int64)]
            )
        self.n = int(n_new)
        self._invalidate_folds()

    def apply_insert(
        self,
        obj_id: int,
        neighbors: "dict[float, np.ndarray] | None",
    ) -> None:
        """Repair the cache after object ``obj_id`` joined the collection.

        ``neighbors`` maps each stored radius to the **complete** set of
        pre-existing live object ids within that radius of the new
        object (the mutation's distance evaluations).  An insert only
        raises counts, so every lower bound stays valid untouched; the
        upper bounds of the listed neighbors are patched up by one, and
        their lower bounds tightened by one.  The new object itself
        receives the *exact* count ``len(neighbors[r])`` at every
        covered radius.

        With ``neighbors=None`` (no distance evaluations were made) the
        lower bounds are kept — still sound — and every upper-bound row
        is dropped, since any of its entries might now understate.
        """
        obj_id = int(obj_id)
        if obj_id >= self.n:
            if obj_id != self.n:
                raise ParameterError(
                    f"insert id {obj_id} skips rows (cache holds {self.n})"
                )
            self.grow(obj_id + 1)
        if neighbors is None:
            if self._ub:
                self._ub.clear()
            self._invalidate_folds()
            return
        neighbors = {
            float(r): np.asarray(v, dtype=np.int64) for r, v in neighbors.items()
        }
        for r in list(self._lb):
            within = neighbors.get(r)
            if within is not None and within.size:
                self._lb[r][within] += 1
        for r in list(self._ub):
            within = neighbors.get(r)
            if within is None:
                # No distance evidence at this radius: entries of
                # touched-but-unknown objects would understate.
                del self._ub[r]
            elif within.size:
                row = self._ub[r]
                known = row[within] != NO_BOUND
                row[within[known]] += 1
        for r, within in neighbors.items():
            exact = np.int64(within.size)
            self._lb_row(r)[obj_id] = exact
            self._ub_row(r)[obj_id] = exact
        self._invalidate_folds()
        self._enforce_budget()

    def apply_delete(
        self,
        obj_id: int,
        neighbors: "dict[float, np.ndarray] | None" = None,
    ) -> None:
        """Repair the cache after object ``obj_id`` left the collection.

        ``neighbors`` maps each stored radius to the complete set of
        *remaining* live object ids within that radius of the deleted
        object.  A delete only lowers counts, so every upper bound stays
        valid untouched; the listed neighbors' lower bounds are patched
        down by one, and their upper bounds tightened by one.

        With ``neighbors=None`` the repair is conservative: every
        lower-bound entry is decremented (any object might have lost a
        neighbor), and upper bounds are kept.  Sound, but looser.

        The deleted object's own rows are reset to the vacuous bounds;
        callers exclude it from answers by compaction.
        """
        obj_id = int(obj_id)
        if not 0 <= obj_id < self.n:
            raise ParameterError(f"delete id {obj_id} out of range (n={self.n})")
        if neighbors is None:
            for row in self._lb.values():
                np.subtract(row, 1, out=row)
                np.maximum(row, 0, out=row)
        else:
            neighbors = {
                float(r): np.asarray(v, dtype=np.int64)
                for r, v in neighbors.items()
            }
            for r in list(self._lb):
                within = neighbors.get(r)
                if within is None:
                    # No distance evidence at this radius: any entry
                    # might overstate now.
                    del self._lb[r]
                elif within.size:
                    row = self._lb[r]
                    row[within] -= 1
                    np.maximum(row, 0, out=row)
            for r in list(self._ub):
                within = neighbors.get(r)
                if within is not None and within.size:
                    row = self._ub[r]
                    known = row[within] != NO_BOUND
                    hit = within[known]
                    row[hit] -= 1
                    np.maximum(row, 0, out=row)
        for row in self._lb.values():
            row[obj_id] = 0
        for row in self._ub.values():
            row[obj_id] = NO_BOUND
        self._invalidate_folds()

    # -- batched mutation repair --------------------------------------------
    #
    # The block forms of :meth:`apply_insert` / :meth:`apply_delete`:
    # one call repairs the cache for a whole mutation batch.  Callers
    # compute the batch-vs-live distance matrix in O(1) ``pair_dist``
    # sweeps and reduce it to per-radius *increment vectors* (how many
    # batch members landed within ``r`` of each touched live object);
    # the repair is then one fancy-indexed add per stored radius
    # instead of one broadcast per object.

    def apply_insert_batch(
        self,
        new_ids: np.ndarray,
        evidence: "dict[float, tuple[np.ndarray, np.ndarray, np.ndarray | None]] | None",
    ) -> None:
        """Repair the cache after a *block* of objects joined.

        ``evidence`` maps each covered radius ``r`` to a triple
        ``(touched_ids, inc, own_counts)``:

        * ``touched_ids`` / ``inc`` — pre-existing live objects within
          ``r`` of at least one newcomer, and *how many* newcomers each
          gained (the complete count delta at ``r``, reduced from the
          batch-vs-live distance matrix);
        * ``own_counts`` — the newcomers' exact counts at ``r`` (aligned
          with ``new_ids``), or ``None`` to leave their rows vacuous
          (sound lower bound 0).

        Radii the evidence does not cover follow the single-object
        rules: lower bounds stay (inserts only raise counts), upper
        bounds are dropped (any entry might now understate).  With
        ``evidence=None`` no distances were evaluated at all: every
        upper-bound row is dropped, lower bounds survive.
        """
        new_ids = np.asarray(new_ids, dtype=np.int64)
        if new_ids.size == 0:
            return
        top = int(new_ids.max())
        if top >= self.n:
            self.grow(top + 1)
        if evidence is None:
            if self._ub:
                self._ub.clear()
            self._invalidate_folds()
            return
        evidence = {
            float(r): (
                np.asarray(touched, dtype=np.int64),
                np.asarray(inc, dtype=np.int64),
                None if own is None else np.asarray(own, dtype=np.int64),
            )
            for r, (touched, inc, own) in evidence.items()
        }
        for r in list(self._lb):
            hit = evidence.get(r)
            if hit is not None and hit[0].size:
                self._lb[r][hit[0]] += hit[1]
        for r in list(self._ub):
            hit = evidence.get(r)
            if hit is None:
                del self._ub[r]
            elif hit[0].size:
                row = self._ub[r]
                touched, inc, _ = hit
                known = row[touched] != NO_BOUND
                row[touched[known]] += inc[known]
        for r, (_, _, own) in evidence.items():
            if own is not None:
                self._lb_row(r)[new_ids] = own
                self._ub_row(r)[new_ids] = own
        self._invalidate_folds()
        self._enforce_budget()

    def apply_delete_batch(
        self,
        ids: np.ndarray,
        evidence: "dict[float, tuple[np.ndarray, np.ndarray]] | None",
    ) -> None:
        """Repair the cache after a *block* of objects left.

        ``evidence`` maps each covered radius ``r`` to
        ``(touched_ids, dec)``: the remaining live objects within ``r``
        of at least one victim and how many neighbors each lost (the
        complete delta at ``r``).  Touched lower bounds come down by
        ``dec`` (they could overstate), touched upper bounds tighten by
        the same amount.  Radii the evidence does not cover lose their
        lower-bound row (any entry might overstate); upper bounds stay
        sound untouched.  With ``evidence=None`` the repair is the
        conservative single-object rule applied ``len(ids)`` times:
        every lower bound drops by the batch size.

        The victims' own rows are reset to the vacuous bounds.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.n:
            raise ParameterError(
                f"delete ids out of range (n={self.n}): {ids.tolist()}"
            )
        if evidence is None:
            for row in self._lb.values():
                np.subtract(row, np.int64(ids.size), out=row)
                np.maximum(row, 0, out=row)
        else:
            evidence = {
                float(r): (
                    np.asarray(touched, dtype=np.int64),
                    np.asarray(dec, dtype=np.int64),
                )
                for r, (touched, dec) in evidence.items()
            }
            for r in list(self._lb):
                hit = evidence.get(r)
                if hit is None:
                    del self._lb[r]
                elif hit[0].size:
                    row = self._lb[r]
                    row[hit[0]] -= hit[1]
                    np.maximum(row, 0, out=row)
            for r in list(self._ub):
                hit = evidence.get(r)
                if hit is not None and hit[0].size:
                    row = self._ub[r]
                    touched, dec = hit
                    known = row[touched] != NO_BOUND
                    row[touched[known]] -= dec[known]
                    np.maximum(row, 0, out=row)
        for row in self._lb.values():
            row[ids] = 0
        for row in self._ub.values():
            row[ids] = NO_BOUND
        self._invalidate_folds()

    def reset_rows(self, ids: np.ndarray) -> None:
        """Reset the rows of ``ids`` to the vacuous bounds.

        Used by shard caches for objects retired by *other* shards:
        their within-shard counts did not change, but the rows must not
        outlive the objects they describe.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        for row in self._lb.values():
            row[ids] = 0
        for row in self._ub.values():
            row[ids] = NO_BOUND
        self._invalidate_folds()

    def raw_rows(self):
        """Yield ``(radius, lb_row, ub_row)`` for every stored radius.

        Rows are the stored per-radius arrays (no folding); a side with
        no evidence at that radius yields ``None``.  Used to transplant
        bounds between caches over different id spaces.
        """
        for r in self.radii:
            yield r, self._lb.get(r), self._ub.get(r)

    def nonvacuous_rows(self) -> np.ndarray:
        """Ids holding *any* evidence (some lb > 0, or some ub known)."""
        mask = np.zeros(self.n, dtype=bool)
        for row in self._lb.values():
            mask |= row > 0
        for row in self._ub.values():
            mask |= row != NO_BOUND
        return np.flatnonzero(mask)

    def entry_count(self) -> int:
        """Non-vacuous bound entries across all stored rows.

        The unit of the rebalance transfer accounting: each positive
        lower bound and each known upper bound counts once.
        """
        total = 0
        for row in self._lb.values():
            total += int(np.count_nonzero(row > 0))
        for row in self._ub.values():
            total += int(np.count_nonzero(row != NO_BOUND))
        return total

    # -- rebalance decomposition -------------------------------------------
    #
    # Within-shard counts decompose over any partition of the shard's
    # members: for a split ``members = stay ∪ moved`` every object
    # satisfies ``c_members(p) = c_stay(p) + c_moved(p)``, and for a
    # merge of disjoint shards A and B, ``c_A∪B(p) = c_A(p) + c_B(p)``.
    # These two methods apply the law to whole caches so split/merge
    # rebalancing can *transfer* evidence instead of resetting it.

    def split_by_counts(
        self,
        rows: np.ndarray,
        moved_counts: "dict[float, np.ndarray]",
    ) -> "tuple[EvidenceCache, EvidenceCache]":
        """Decompose into ``(stay, moved)`` caches for a shard split.

        ``moved_counts[r]`` (aligned with ``rows``) is the **exact**
        number of moved members within ``r`` of each row object
        (self-excluded), for every stored radius; ``rows`` must cover
        every non-vacuous row.  Subtracting the exact moved
        contribution from a bound on ``c_members`` leaves a valid bound
        on ``c_stay`` — lower bounds clamp at 0, known upper bounds
        come down by the same exact amount — and the moved cache gets
        ``moved_counts`` itself as exact rows.  Tightness may be lost
        (a lower bound can under-shoot the stay half it came from);
        soundness cannot.
        """
        rows = np.asarray(rows, dtype=np.int64)
        stay = EvidenceCache(self.n, max_radii=self.max_radii)
        moved = EvidenceCache(self.n, max_radii=self.max_radii)
        if rows.size == 0:
            return stay, moved
        for r in self.radii:
            c = np.asarray(moved_counts[float(r)], dtype=np.int64)
            if c.shape != rows.shape:
                raise ParameterError(
                    f"split_by_counts: counts at r={r} cover {c.size} "
                    f"objects for {rows.size} rows"
                )
            lb = self.lower_bounds(r)[rows]
            ub = self.upper_bounds(r)[rows]
            stay_lb = np.maximum(lb - c, 0)
            if stay_lb.any():
                row = np.zeros(self.n, dtype=np.int64)
                row[rows] = stay_lb
                stay._lb[float(r)] = row
            known = ub != NO_BOUND
            if known.any():
                row = np.full(self.n, NO_BOUND, dtype=np.int64)
                row[rows[known]] = np.maximum(ub[known] - c[known], 0)
                stay._ub[float(r)] = row
            lb_row = np.zeros(self.n, dtype=np.int64)
            lb_row[rows] = c
            ub_row = np.full(self.n, NO_BOUND, dtype=np.int64)
            ub_row[rows] = c
            moved._lb[float(r)] = lb_row
            moved._ub[float(r)] = ub_row
        stay._invalidate_folds()
        stay._enforce_budget()
        moved._invalidate_folds()
        moved._enforce_budget()
        return stay, moved

    def merged_with(self, other: "EvidenceCache") -> "EvidenceCache":
        """The cache of the union shard: per-radius bound *sums*.

        Lower bounds add unconditionally (both halves understate their
        disjoint contributions); upper bounds add only where **both**
        sides know one — a single-sided upper bound says nothing about
        the union.  Folded bounds are used at every stored radius of
        either side, so one side's evidence at ``r`` still combines
        with the other side's evidence proven at different radii.
        """
        if other.n != self.n:
            raise ParameterError(
                f"merged_with: caches cover {self.n} vs {other.n} objects"
            )
        budget = self.max_radii if self.max_radii is not None else other.max_radii
        merged = EvidenceCache(self.n, max_radii=budget)
        for r in sorted(set(self._lb) | set(other._lb)):
            row = self.lower_bounds(r) + other.lower_bounds(r)
            if row.any():
                merged._lb[float(r)] = row
        for r in sorted(set(self._ub) | set(other._ub)):
            a = self.upper_bounds(r)
            b = other.upper_bounds(r)
            known = (a != NO_BOUND) & (b != NO_BOUND)
            if known.any():
                row = np.full(self.n, NO_BOUND, dtype=np.int64)
                row[known] = a[known] + b[known]
                merged._ub[float(r)] = row
        merged._invalidate_folds()
        merged._enforce_budget()
        return merged

    def take(self, ids: np.ndarray) -> "EvidenceCache":
        """A new cache holding only the rows of ``ids`` (re-numbered).

        Evidence is about the data, not about any index built over it,
        so a compacted view of the collection can keep every bound.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            raise ParameterError("take: empty id set")
        sliced = EvidenceCache(ids.size, max_radii=self.max_radii)
        for r, row in self._lb.items():
            sliced._lb[r] = row[ids].copy()
        for r, row in self._ub.items():
            sliced._ub[r] = row[ids].copy()
        sliced._invalidate_folds()
        return sliced

    # -- eviction ----------------------------------------------------------

    def _enforce_budget(self) -> None:
        if self.max_radii is None:
            return
        changed = False
        while len(self._lb) > self.max_radii:
            radii = sorted(self._lb)
            gaps = np.diff(np.asarray(radii))
            i = int(np.argmin(gaps))
            # A bound proved at radii[i] holds at radii[i+1]: fold up.
            np.maximum(
                self._lb[radii[i + 1]], self._lb[radii[i]],
                out=self._lb[radii[i + 1]],
            )
            del self._lb[radii[i]]
            changed = True
        while len(self._ub) > self.max_radii:
            radii = sorted(self._ub)
            gaps = np.diff(np.asarray(radii))
            i = int(np.argmin(gaps))
            # An exact count at radii[i+1] bounds radii[i]: fold down.
            np.minimum(
                self._ub[radii[i]], self._ub[radii[i + 1]],
                out=self._ub[radii[i]],
            )
            del self._ub[radii[i + 1]]
            changed = True
        if changed:
            self._invalidate_folds()

    def evict(self, max_radii: int) -> None:
        """One-shot budget enforcement down to ``max_radii`` per side."""
        if max_radii < 1:
            raise ParameterError(f"max_radii must be >= 1, got {max_radii}")
        previous = self.max_radii
        self.max_radii = max_radii
        self._enforce_budget()
        self.max_radii = previous

    # -- (de)serialisation --------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Dense snapshot of the cache (for :func:`repro.io.save_engine`)."""
        lb_radii = sorted(self._lb)
        ub_radii = sorted(self._ub)
        return {
            "cache_lb_radii": np.asarray(lb_radii, dtype=np.float64),
            "cache_lb": (
                np.stack([self._lb[r] for r in lb_radii])
                if lb_radii
                else np.empty((0, self.n), dtype=np.int64)
            ),
            "cache_ub_radii": np.asarray(ub_radii, dtype=np.float64),
            "cache_ub": (
                np.stack([self._ub[r] for r in ub_radii])
                if ub_radii
                else np.empty((0, self.n), dtype=np.int64)
            ),
        }

    @classmethod
    def from_state_arrays(
        cls, n: int, arrays: dict[str, np.ndarray]
    ) -> "EvidenceCache":
        """Rebuild a cache from :meth:`state_arrays` output.

        The radius list and bound matrix of each kind must pair up
        exactly — a silent zip would attribute bounds to radii they were
        never proven at, which breaks exactness.
        """
        cache = cls(n)
        for kind, store in (("lb", cache._lb), ("ub", cache._ub)):
            radii = arrays[f"cache_{kind}_radii"]
            rows = arrays[f"cache_{kind}"]
            if len(radii) != len(rows):
                raise ParameterError(
                    f"cache_{kind}_radii lists {len(radii)} radii but "
                    f"cache_{kind} has {len(rows)} bound rows"
                )
            for r, row in zip(radii, rows):
                store[float(r)] = np.asarray(row, dtype=np.int64).copy()
        cache._invalidate_folds()
        return cache

    @property
    def nbytes(self) -> int:
        """Memory held by the stored bound arrays (folds excluded)."""
        total = 0
        for arr in (*self._lb.values(), *self._ub.values()):
            total += arr.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvidenceCache(n={self.n}, lb_radii={len(self._lb)}, "
            f"ub_radii={len(self._ub)})"
        )
