"""The per-object evidence cache behind cross-query reuse.

Every detection query proves count facts about every object: the filter
proves *lower bounds* (Lemma 1 — Greedy-Counting never overstates), the
verifier proves lower bounds that are *exact* whenever early termination
did not fire, and MRPG's stored exact-K'NN lists (§5.5, Property 3)
yield exact counts at any radius.  All of these are monotone in ``r``:

* a lower bound proved at radius ``r`` holds at every ``r' >= r``
  (the neighbor ball only grows), and
* an exact count at radius ``r`` upper-bounds the count at every
  ``r' <= r`` (the ball only shrinks).

:class:`EvidenceCache` stores these facts as dense per-radius bound
arrays, so deciding a whole dataset against a new ``(r, k)`` query is a
handful of vectorised max/min/compare passes — no graph traversal, no
distance computation.  Objects whose interval ``[lb, ub]`` still
straddles ``k`` are the only ones the engine has to touch.
"""

from __future__ import annotations

import numpy as np

from ..core.result import ObjectEvidence
from ..exceptions import ParameterError

#: sentinel upper bound: "nothing known" (any count fits below it).
NO_BOUND = np.iinfo(np.int64).max


class EvidenceCache:
    """Accumulated per-object neighbor-count bounds, indexed by radius.

    ``lower_bounds(r)`` / ``upper_bounds(r)`` fold every stored radius
    through the monotonicity rules above, returning the tightest bounds
    provable at ``r`` from everything any past query learned.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ParameterError(f"cache needs at least one object, got n={n}")
        self.n = int(n)
        self._lb: dict[float, np.ndarray] = {}
        self._ub: dict[float, np.ndarray] = {}

    # -- queries -----------------------------------------------------------

    @property
    def radii(self) -> list[float]:
        """Every radius with recorded evidence, ascending."""
        return sorted(set(self._lb) | set(self._ub))

    def lower_bounds(self, r: float) -> np.ndarray:
        """Tightest provable lower bound per object at radius ``r``."""
        lb = np.zeros(self.n, dtype=np.int64)
        for r0, arr in self._lb.items():
            if r0 <= r:
                np.maximum(lb, arr, out=lb)
        return lb

    def upper_bounds(self, r: float) -> np.ndarray:
        """Tightest provable upper bound per object at radius ``r``.

        Entries without evidence are :data:`NO_BOUND`.
        """
        ub = np.full(self.n, NO_BOUND, dtype=np.int64)
        for r0, arr in self._ub.items():
            if r0 >= r:
                np.minimum(ub, arr, out=ub)
        return ub

    # -- updates -----------------------------------------------------------

    def record(
        self,
        r: float,
        ids: np.ndarray,
        counts: np.ndarray,
        exact_mask: np.ndarray | None = None,
    ) -> None:
        """Record proven counts for ``ids`` at radius ``r``.

        ``counts`` are lower bounds; where ``exact_mask`` is set they are
        true counts and double as upper bounds.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return
        counts = np.asarray(counts, dtype=np.int64)
        lb = self._lb.get(r)
        if lb is None:
            lb = self._lb[r] = np.zeros(self.n, dtype=np.int64)
        np.maximum.at(lb, ids, counts)
        if exact_mask is None:
            return
        exact_mask = np.asarray(exact_mask, dtype=bool)
        if not exact_mask.any():
            return
        ub = self._ub.get(r)
        if ub is None:
            ub = self._ub[r] = np.full(self.n, NO_BOUND, dtype=np.int64)
        np.minimum.at(ub, ids[exact_mask], counts[exact_mask])

    def ingest(self, evidence: ObjectEvidence) -> None:
        """Absorb the per-object evidence of a finished detection run."""
        if evidence.n != self.n:
            raise ParameterError(
                f"evidence covers {evidence.n} objects, cache holds {self.n}"
            )
        self.record(
            evidence.r,
            np.arange(self.n, dtype=np.int64),
            evidence.lower_bounds,
            evidence.exact_mask,
        )

    def clear(self) -> None:
        self._lb.clear()
        self._ub.clear()

    # -- (de)serialisation --------------------------------------------------

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Dense snapshot of the cache (for :func:`repro.io.save_engine`)."""
        lb_radii = sorted(self._lb)
        ub_radii = sorted(self._ub)
        return {
            "cache_lb_radii": np.asarray(lb_radii, dtype=np.float64),
            "cache_lb": (
                np.stack([self._lb[r] for r in lb_radii])
                if lb_radii
                else np.empty((0, self.n), dtype=np.int64)
            ),
            "cache_ub_radii": np.asarray(ub_radii, dtype=np.float64),
            "cache_ub": (
                np.stack([self._ub[r] for r in ub_radii])
                if ub_radii
                else np.empty((0, self.n), dtype=np.int64)
            ),
        }

    @classmethod
    def from_state_arrays(
        cls, n: int, arrays: dict[str, np.ndarray]
    ) -> "EvidenceCache":
        """Rebuild a cache from :meth:`state_arrays` output.

        The radius list and bound matrix of each kind must pair up
        exactly — a silent zip would attribute bounds to radii they were
        never proven at, which breaks exactness.
        """
        cache = cls(n)
        for kind, store in (("lb", cache._lb), ("ub", cache._ub)):
            radii = arrays[f"cache_{kind}_radii"]
            rows = arrays[f"cache_{kind}"]
            if len(radii) != len(rows):
                raise ParameterError(
                    f"cache_{kind}_radii lists {len(radii)} radii but "
                    f"cache_{kind} has {len(rows)} bound rows"
                )
            for r, row in zip(radii, rows):
                store[float(r)] = np.asarray(row, dtype=np.int64).copy()
        return cache

    @property
    def nbytes(self) -> int:
        """Memory held by the bound arrays."""
        total = 0
        for arr in (*self._lb.values(), *self._ub.values()):
            total += arr.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvidenceCache(n={self.n}, lb_radii={len(self._lb)}, "
            f"ub_radii={len(self._ub)})"
        )
