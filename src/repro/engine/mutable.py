"""Mutable engine core: one substrate for dynamic, top-n and streaming DOD.

The paper restricts itself to a static ``P`` (§2) and defers dynamic
data to streaming algorithms in the exact-STORM lineage.  Between those
poles this module puts the :class:`~repro.engine.engine.DetectionEngine`
itself: its :class:`~repro.engine.evidence.EvidenceCache` stores count
*bounds*, and the cache's monotonicity laws extend to mutations — an
insert can only raise neighbor counts within its radius, a delete can
only lower them — so the bounds every past query proved can be
**repaired** instead of dropped (``docs/incremental.md``).

:class:`MutableDetectionEngine` owns three pieces of state over the
full, append-only id space (dead objects keep their ids as tombstones):

* the object collection (``insert`` appends, ``remove`` tombstones);
* an incrementally maintained proximity graph — new vertices link to
  their nearest discovered neighbors (from the repair scan when the
  cache holds radii, NSW-style greedy search otherwise), removed
  vertices are tombstoned with their neighbors chained
  (:meth:`~repro.graphs.adjacency.Graph.tombstone`), and a periodic
  :meth:`rebuild` restores filter quality after heavy churn;
* the evidence cache, repaired on every mutation from that mutation's
  own distance evaluations.

``detect``/``sweep``/``top_n`` answer over a lazily compacted
:class:`DetectionEngine` seeded with the repaired bounds; evidence the
compact engine proves is folded back into the full-space cache before
the next mutation.  Answers are **bit-identical** to a fresh
``DetectionEngine`` on the compacted dataset — repairs only ever keep
*sound* bounds, and the engine verifies whatever the bounds cannot
decide (the metamorphic suite and
``scripts/check_incremental_equivalence.py`` enforce this).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.result import DODResult
from ..core.traversal import DEFAULT_BLOCK
from ..core.verify import Verifier
from ..backends import resolve_backend
from ..data import Dataset
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph
from ..graphs.base import build_graph
from ..metrics import Metric, resolve_metric
from ..rng import ensure_rng
from .engine import DetectionEngine, SweepResult
from .evidence import EvidenceCache, build_delete_evidence
from .protocol import EngineCapabilities


class MutableDetectionEngine:
    """Exact DOD serving over a mutable collection, with bound repair.

    Parameters
    ----------
    metric, K, seed, search_attempts:
        As in the old ``DynamicDODetector``: the metric, the incremental
        graph degree, the rng seed, and the number of NSW-style greedy
        searches used to collect link candidates when no repair scan is
        available.
    n_jobs, mode, batch_size, verify:
        Execution knobs handed to the compacted serving engine.
    rebuild_graph:
        Builder used by :meth:`rebuild` (default MRPG).
    rebuild_every:
        Auto-rebuild the graph (without renumbering) after this many
        mutations; ``None`` disables.
    cache_radii:
        Per-side radius budget of the evidence cache (eviction policy).
    pinned:
        Radii whose evidence is maintained *exactly* through mutations
        from the start: every insert/remove scan covers them, so a
        pinned ``(r, k)`` query is a pure cache decision — the
        exact-STORM-style streaming substrate.
    """

    def __init__(
        self,
        metric: "str | Metric" = "l2",
        K: int = 16,
        seed: "int | None" = 0,
        search_attempts: int = 2,
        n_jobs: int = 1,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        verify: str = "linear",
        rebuild_graph: str = "mrpg",
        rebuild_every: "int | None" = None,
        cache_radii: "int | None" = None,
        pinned: Sequence[float] = (),
        backend: "str | None" = None,
        build_workers: "int | None" = None,
    ):
        if K < 1:
            raise ParameterError(f"K must be >= 1, got {K}")
        if search_attempts < 1:
            raise ParameterError(
                f"search_attempts must be >= 1, got {search_attempts}"
            )
        if rebuild_every is not None and rebuild_every < 1:
            raise ParameterError(
                f"rebuild_every must be >= 1, got {rebuild_every}"
            )
        self.metric = resolve_metric(metric)
        self.K = int(K)
        self.search_attempts = int(search_attempts)
        self.n_jobs = int(n_jobs)
        self.mode = mode
        self.batch_size = int(batch_size)
        self.verify = verify
        self.rebuild_graph = rebuild_graph
        self.rebuild_every = rebuild_every
        self.build_workers = None if build_workers is None else int(build_workers)
        self.cache_radii = cache_radii
        # Resolved once so screen/rescreen counters survive the dataset
        # refreshes every mutation triggers (the instance is the stats
        # aggregation unit; each refresh only rebuilds screen state).
        self._backend = None if backend is None else resolve_backend(backend)
        self._rng = ensure_rng(seed)
        self._objects: list[Any] = []
        self._alive: list[bool] = []
        self._graph: Graph | None = None
        self._dataset: Dataset | None = None  # covers all objects, incl. dead
        self.cache: EvidenceCache | None = None
        self._pinned: set[float] = {float(r) for r in pinned}
        self._compact: "tuple[DetectionEngine, np.ndarray] | None" = None
        self._mutations_since_rebuild = 0
        #: per-object repair scans of the most recent :meth:`insert`
        #: (radius -> within ids), in insertion order.  The sliding
        #: window consumes these to maintain its expiry bookkeeping.
        self.last_insert_neighbors: list[dict[float, np.ndarray]] = []
        #: distance computations spent by this engine (mutations + queries).
        self.pairs = 0
        self.stats: dict[str, int] = {
            "inserts": 0,
            "removes": 0,
            "detects": 0,
            "rebuilds": 0,
        }

    @classmethod
    def fit(cls, objects, **kwargs) -> "MutableDetectionEngine":
        """Bulk-load a collection and build its graph in one shot.

        Equivalent to inserting every object and rebuilding, but skips
        the per-object incremental linking — the right entry point when
        the initial population is known up front and mutations start
        afterwards.
        """
        engine = cls(**kwargs)
        objects = list(objects)
        if objects:
            engine._objects = objects
            engine._alive = [True] * len(objects)
            engine._refresh_dataset()
            engine.cache = EvidenceCache(
                engine.n_total, max_radii=engine.cache_radii
            )
            engine._graph = Graph(engine.n_total)
            engine._graph.meta["builder"] = "mutable"
            engine._graph.meta["K"] = engine.K
            engine.rebuild(renumber=False)
            engine.stats["inserts"] = len(objects)
            engine.stats["rebuilds"] = 0
        return engine

    def reset_cache(self) -> None:
        """Drop every accumulated and repaired bound (keeps the graph).

        The cache-drop-and-recompute baseline the repair path is
        benchmarked against (``benchmarks/bench_engine_mutable.py``);
        also useful to shed memory on a long-lived serving process.
        """
        if self._compact is not None:
            engine, _ = self._compact
            self._compact = None
            engine.close()
        if self.cache is not None:
            self.cache.clear()

    # -- bookkeeping ---------------------------------------------------------

    @property
    def n_total(self) -> int:
        """Ids allocated so far (live + tombstoned)."""
        return len(self._objects)

    @property
    def n_active(self) -> int:
        return sum(self._alive)

    def active_ids(self) -> np.ndarray:
        """Stable external ids (insertion order) of live objects."""
        return np.flatnonzero(np.asarray(self._alive, dtype=bool))

    def live_objects(self) -> list:
        """The live objects, in stable-id (insertion) order."""
        return [self._objects[int(v)] for v in self.active_ids()]

    def live_dataset(self) -> Dataset:
        """A fresh :class:`Dataset` over the live objects (compact ids).

        Row ``t`` is the object with stable id ``active_ids()[t]`` —
        what external oracles (brute force, a fresh engine) should run
        against when checking this engine's answers.
        """
        return self._live_dataset(self.active_ids())

    def object_log(self) -> list:
        """The full insertion log, tombstoned positions included.

        This is what :func:`repro.io.load_mutable_engine` needs back to
        restore a snapshot of this engine.
        """
        return list(self._objects)

    def pin(self, *radii: float) -> None:
        """Maintain exact evidence at these radii through future mutations."""
        self._pinned.update(float(r) for r in radii)

    def _refresh_dataset(self) -> None:
        self._harvest_pairs()
        self._dataset = Dataset(
            self._materialise(), self.metric, backend=self._backend
        )

    def _materialise(self):
        if self.metric.is_vector:
            return np.asarray(self._objects, dtype=np.float64)
        return self._objects

    def _harvest_pairs(self) -> None:
        if self._dataset is not None:
            self.pairs += self._dataset.counter.pairs
            self._dataset.reset_counter()

    def _live_dataset(self, keep: np.ndarray) -> Dataset:
        """Materialise the live objects ``keep`` as a compact Dataset."""
        objects = [self._objects[int(v)] for v in keep]
        return Dataset(
            np.asarray(objects, dtype=np.float64)
            if self.metric.is_vector
            else objects,
            self.metric,
            backend=self._backend,
        )

    def _scan_radii(self) -> list[float]:
        """Radii a mutation's distance scan must cover."""
        stored = set(self.cache.radii) if self.cache is not None else set()
        return sorted(stored | self._pinned)

    # -- compact serving engine ----------------------------------------------

    def _fold_back(self) -> None:
        """Absorb the compact engine's proven bounds, then drop it.

        Evidence is about the data, so bounds proved over the compacted
        view transplant row-by-row into the full-id-space cache, where
        the next mutation repairs them.
        """
        if self._compact is None:
            return
        engine, keep = self._compact
        self._compact = None
        assert self.cache is not None
        for r, lb_row, ub_row in engine.cache.raw_rows():
            self.cache.record_bounds(r, keep, lb_row, ub_row)
        engine.close()

    def _invalidate_compact(self) -> None:
        self._fold_back()

    def _ensure_compact(self, n_jobs: "int | None" = None) -> tuple:
        if self._graph is None or self.n_active == 0:
            raise ParameterError("detect before any insert")
        if (
            self.rebuild_every is not None
            and self._mutations_since_rebuild >= self.rebuild_every
        ):
            self.rebuild(renumber=False)
        if self._compact is not None:
            engine, keep = self._compact
            if n_jobs is None or engine.n_jobs == n_jobs:
                return engine, keep
            self._fold_back()
        self._harvest_pairs()
        keep = self.active_ids()
        compact_ds = self._live_dataset(keep)
        graph, _ = self._graph.compact(keep)
        engine = DetectionEngine(
            compact_ds,
            graph,
            verifier=Verifier(compact_ds, strategy=self.verify, rng=self._rng),
            n_jobs=self.n_jobs if n_jobs is None else int(n_jobs),
            rng=self._rng,
            mode=self.mode,
            batch_size=self.batch_size,
            cache_radii=self.cache_radii,
        )
        if self.cache is not None:
            engine.cache = self.cache.take(keep)
        self._compact = (engine, keep)
        return engine, keep

    # -- mutation --------------------------------------------------------------

    def insert(self, objects: Sequence[Any]) -> np.ndarray:
        """Append a block of objects; returns their stable ids.

        Mutation is the fast path: the whole batch is ranged against the
        live collection in **O(1) ``pair_dist`` sweeps** (one batch-vs-
        prior matrix plus one intra-batch triangle), and the per-radius
        count increments are applied to the cache in one vectorised pass
        per radius (:meth:`EvidenceCache.apply_insert_batch`) — one
        broadcast per batch instead of one per object.  The same matrix
        supplies each newcomer's ``K`` nearest links and patches the
        stored exact-K'NN lists in place (Property 3 survives inserts
        decrementally instead of being dropped).  With no maintained
        radii and no stored lists, linking falls back to NSW-style
        greedy search and no distances are evaluated at all.
        """
        objects = list(objects)
        if not objects:
            self.last_insert_neighbors = []
            return np.empty(0, dtype=np.int64)
        self._invalidate_compact()
        first_new = self.n_total
        self._objects.extend(objects)
        self._alive.extend([True] * len(objects))
        self._refresh_dataset()
        if self._graph is None:
            self._graph = Graph(self.n_total)
            self._graph.meta["builder"] = "mutable"
            self._graph.meta["K"] = self.K
        else:
            self._graph.grow(self.n_total)
        if self.cache is None:
            self.cache = EvidenceCache(self.n_total, max_radii=self.cache_radii)
        else:
            self.cache.grow(self.n_total)

        assert self._dataset is not None
        new_ids = np.arange(first_new, self.n_total, dtype=np.int64)
        alive = np.asarray(self._alive, dtype=bool)
        prior_live = np.flatnonzero(alive[:first_new])
        radii = self._scan_radii()
        self.last_insert_neighbors = []
        if not radii and not self._graph.exact_knn:
            # Nothing to repair and nothing to keep exact: skip the
            # scan entirely and link by greedy search.
            self.cache.apply_insert_batch(new_ids, None)
            for new_id in new_ids:
                self._link_new_vertex(
                    int(new_id), np.flatnonzero(alive[: int(new_id)])
                )
                self.last_insert_neighbors.append({})
        else:
            D_prior, D_intra = self._batch_scan(new_ids, prior_live, radii)
            evidence: dict = {}
            for r in radii:
                within_prior = D_prior <= r
                within_intra = D_intra <= r
                inc = within_prior.sum(axis=0)
                hit = inc > 0
                evidence[r] = (
                    prior_live[hit],
                    inc[hit],
                    within_prior.sum(axis=1) + within_intra.sum(axis=1),
                )
            self.cache.apply_insert_batch(new_ids, evidence)
            for i in range(new_ids.size):
                # A newcomer's recorded neighbor scan lists what was
                # live when it arrived: the prior population plus the
                # earlier members of its own batch (the sliding window's
                # succeeding-neighbor bookkeeping relies on exactly
                # these semantics).
                self.last_insert_neighbors.append({
                    r: np.concatenate((
                        prior_live[D_prior[i] <= r],
                        new_ids[:i][D_intra[i, :i] <= r],
                    ))
                    for r in radii
                })
                candidates = np.concatenate((prior_live, new_ids[:i]))
                if candidates.size == 0:
                    continue
                d_row = np.concatenate((D_prior[i], D_intra[i, :i]))
                if candidates.size <= self.K:
                    links = candidates
                else:
                    links = candidates[
                        np.argpartition(d_row, self.K - 1)[: self.K]
                    ]
                for v in links:
                    self._graph.add_edge(int(new_ids[i]), int(v))
            self._maintain_exact_knn(new_ids, prior_live, D_prior)
        self._harvest_pairs()
        self.stats["inserts"] += len(objects)
        self._mutations_since_rebuild += len(objects)
        return new_ids

    def _batch_scan(
        self, new_ids: np.ndarray, prior_live: np.ndarray, radii: list[float]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch-vs-live distances in two ``pair_dist`` sweeps.

        Returns ``(D_prior, D_intra)``: the ``B x P`` newcomer-vs-prior
        matrix and the symmetric ``B x B`` intra-batch matrix (diagonal
        ``inf``).  With no stored exact-K'NN lists the sweeps only have
        to be verdict-faithful at the maintained radii (passed as the
        bound tuple), so early-abandoning metrics stop at the largest
        and screening backends rescreen only around each radius; list
        patching compares against list distances that may exceed every
        radius, so it needs exact values.
        """
        assert self._graph is not None and self._dataset is not None
        bound = (
            None if self._graph.exact_knn or not radii else tuple(radii)
        )
        B, P = new_ids.size, prior_live.size
        if P:
            D_prior = self._dataset.pair_dist(
                np.repeat(new_ids, P), np.tile(prior_live, B),
                bound=bound, consistent=True,
            ).reshape(B, P)
        else:
            D_prior = np.empty((B, 0), dtype=np.float64)
        D_intra = np.full((B, B), np.inf, dtype=np.float64)
        if B > 1:
            iu, ju = np.triu_indices(B, k=1)
            d = self._dataset.pair_dist(
                new_ids[iu], new_ids[ju], bound=bound, consistent=True
            )
            D_intra[iu, ju] = d
            D_intra[ju, iu] = d
        return D_prior, D_intra

    def _maintain_exact_knn(
        self, new_ids: np.ndarray, prior_live: np.ndarray, D_prior: np.ndarray
    ) -> None:
        """Patch stored exact-K'NN lists the newcomers land inside of.

        A stored list is the holder's *exact* K' nearest neighbors
        (Property 3); a newcomer strictly closer than the list's last
        entry falsifies it.  The union of the old list and the newcomer
        still contains the true K' nearest, so the list is repaired in
        place — newcomer inserted by distance, truncated back to K'
        (:meth:`~repro.graphs.adjacency.Graph.patch_exact_knn`) —
        keeping the §5.5 shortcut strong under insert churn instead of
        degrading it one dropped list at a time.  Newcomers are applied
        in insertion order so each patch sees the already-patched list.
        """
        assert self._graph is not None
        if not self._graph.exact_knn or prior_live.size == 0:
            return
        pos = np.full(self.n_total, -1, dtype=np.int64)
        pos[prior_live] = np.arange(prior_live.size)
        holders = [
            h for h in list(self._graph.exact_knn) if 0 <= pos[h]
        ]
        for i in range(new_ids.size):
            for h in holders:
                self._graph.patch_exact_knn(
                    h, int(new_ids[i]), float(D_prior[i, pos[h]])
                )

    def _link_new_vertex(self, new_id: int, prior_live: np.ndarray) -> None:
        """NSW-style insertion: greedy searches collect link candidates."""
        assert self._graph is not None and self._dataset is not None
        if prior_live.size == 0:
            return
        if prior_live.size <= self.K:
            for v in prior_live:
                self._graph.add_edge(new_id, int(v))
            return
        pool: dict[int, float] = {}
        for _ in range(self.search_attempts):
            entry = int(prior_live[int(self._rng.integers(prior_live.size))])
            self._collect(new_id, entry, pool)
        closest = sorted(pool.items(), key=lambda kv: kv[1])[: self.K]
        for v, _ in closest:
            self._graph.add_edge(new_id, v)

    def _collect(self, query: int, entry: int, pool: dict[int, float]) -> None:
        assert self._graph is not None and self._dataset is not None
        current = entry
        if current not in pool:
            pool[current] = self._dataset.dist(query, current)
        current_d = pool[current]
        for _ in range(64):
            nbrs = [
                int(v)
                for v in self._graph.neighbors_list(current)
                if self._alive[int(v)] and int(v) != query
            ]
            fresh = [v for v in nbrs if v not in pool]
            if fresh:
                d = self._dataset.dist_many(
                    query, np.asarray(fresh, dtype=np.int64)
                )
                for v, dv in zip(fresh, d):
                    pool[v] = float(dv)
            best_v, best_d = current, current_d
            for v in nbrs:
                dv = pool.get(v)
                if dv is not None and dv < best_d:
                    best_v, best_d = v, dv
            if best_v == current:
                break
            current, current_d = best_v, best_d

    def remove(
        self,
        ids: Sequence[int],
        known_neighbors: "dict[int, dict[float, np.ndarray]] | None" = None,
    ) -> None:
        """Tombstone objects; the cache is repaired, not dropped.

        ``known_neighbors`` optionally maps a removed id to its complete
        per-radius within sets over the *remaining* live objects (e.g.
        the sliding window's expiry bookkeeping), skipping the repair
        scan.  Without it, each removal ranges the live collection once
        when the cache holds radii.
        """
        if self._graph is None:
            raise ParameterError("remove before any insert")
        id_list = [int(raw) for raw in ids]
        for v in id_list:
            if not 0 <= v < self.n_total or not self._alive[v]:
                raise ParameterError(f"id {v} is not an active object")
        if len(set(id_list)) != len(id_list):
            raise ParameterError("remove: duplicate ids")
        if not id_list:
            return
        self._invalidate_compact()
        self._harvest_pairs()
        assert self._dataset is not None
        victims = np.asarray(id_list, dtype=np.int64)
        radii = self._scan_radii()
        alive = np.asarray(self._alive, dtype=bool)
        alive[victims] = False
        survivors = np.flatnonzero(alive)
        if self.cache is not None and radii:
            # One victims-vs-survivors pair_dist sweep covers every
            # victim without supplied bookkeeping; per radius the column
            # sums become one decrement vector (how many neighbors each
            # survivor lost), applied in a single vectorised pass.
            self.cache.apply_delete_batch(
                victims,
                build_delete_evidence(
                    self._dataset, id_list, survivors, radii,
                    known_neighbors, self.n_total,
                ),
            )
        elif self.cache is not None:
            self.cache.apply_delete_batch(victims, {})
        self._graph.tombstone_many(victims, alive=alive)
        for v in id_list:
            self._alive[v] = False
        self._harvest_pairs()
        self.stats["removes"] += len(id_list)
        self._mutations_since_rebuild += len(id_list)

    def vacuum(self) -> np.ndarray:
        """Drop tombstoned storage, renumbering live ids compactly.

        Returns the id remap (``remap[old_id]`` is the new id, ``-1``
        for dead ids).  Subsequent external ids are ``0..n_active-1``
        in previous insertion order.  Graph links and repaired bounds
        survive the renumbering.
        """
        self._invalidate_compact()
        keep = self.active_ids()
        remap = np.full(self.n_total, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        self._objects = [self._objects[int(v)] for v in keep]
        self._alive = [True] * keep.size
        if keep.size == 0:
            self._graph = None
            self._dataset = None
            self.cache = None
            return remap
        self._refresh_dataset()
        assert self._graph is not None
        self._graph, _ = self._graph.compact(keep)
        if self.cache is not None:
            self.cache = self.cache.take(keep)
        return remap

    def rebuild(self, renumber: bool = True) -> "np.ndarray | None":
        """Build a fresh proximity graph over the live objects.

        Restores filter quality after heavy churn; repaired evidence
        survives (it is about the data, not the graph).  With
        ``renumber=True`` (the historical ``DynamicDODetector``
        semantics) the internal numbering is compacted first and the id
        remap returned; ``renumber=False`` keeps stable ids, which is
        what :attr:`rebuild_every` uses.
        """
        remap = None
        if renumber:
            remap = self.vacuum()
            if self._dataset is None:
                return remap
        else:
            self._invalidate_compact()
        keep = self.active_ids()
        if keep.size == 0:
            return remap
        self._harvest_pairs()
        compact_ds = self._live_dataset(keep)
        if keep.size > self.K + 1:
            built = build_graph(
                self.rebuild_graph,
                compact_ds,
                K=self.K,
                rng=self._rng,
                build_workers=self.build_workers,
            )
        else:
            built = Graph(keep.size)
            for u in range(keep.size):
                for v in range(u + 1, keep.size):
                    built.add_edge(u, v)
            built.finalize()
        self.pairs += compact_ds.counter.pairs
        graph = Graph(self.n_total)
        graph.meta = {"builder": "mutable", "K": self.K}
        # Keep the inner build's provenance so build_stats() reflects the
        # most recent rebuild even though ids were remapped.
        for key in (
            "build_seconds",
            "phase_seconds",
            "iterations",
            "updates_per_round",
            "build_workers",
            "build_stats",
            "detour_scans",
            "detour_links_added",
            "links_removed",
            "connect_patches",
        ):
            if key in built.meta:
                graph.meta[key] = built.meta[key]
        for cu in range(keep.size):
            u = int(keep[cu])
            graph.set_links(u, (int(keep[w]) for w in built.neighbors_list(cu)))
            graph.pivots[u] = built.pivots[cu]
        for cv, (nbr_ids, dists) in built.exact_knn.items():
            graph.exact_knn[int(keep[cv])] = (keep[nbr_ids], dists.copy())
        self._graph = graph
        self._mutations_since_rebuild = 0
        self.stats["rebuilds"] += 1
        return remap

    # -- queries ----------------------------------------------------------------

    def detect(
        self, r: float, k: int, n_jobs: "int | None" = None
    ) -> DODResult:
        """Exact ``(r, k)``-outliers among the live objects.

        The result's ``outliers`` are *stable external ids*; everything
        else (counts, phases, pairs) describes the compacted run.
        """
        engine, keep = self._ensure_compact(n_jobs)
        result = engine.query(r, k)
        self.pairs += result.pairs
        result.outliers = keep[result.outliers]
        self.stats["detects"] += 1
        return result

    def query(self, r: float, k: int) -> DODResult:
        """Protocol name for :meth:`detect` (the :class:`EngineCore` surface)."""
        return self.detect(r, k)

    def batch(self, queries) -> list[DODResult]:
        """Answer ``(r, k)`` queries in the given order (serving semantics)."""
        return [self.detect(float(r), int(k)) for r, k in queries]

    def sweep(self, r_grid, k_grid=None, k: "int | None" = None) -> SweepResult:
        """Engine sweep over the live objects (stable external ids)."""
        engine, keep = self._ensure_compact()
        sweep = engine.sweep(r_grid, k_grid=k_grid, k=k)
        for result in sweep.results.values():
            result.outliers = keep[result.outliers]
            self.pairs += result.pairs
        self.stats["detects"] += len(sweep.queries)
        return sweep

    def top_n(self, n_top: int, k: int, rng: "int | None" = 0):
        """Exact top-``n_top`` ranking over the live objects.

        Seeded from the compacted engine's evidence (cached kNN upper
        bounds become ORCA cutoffs); ids are stable external ids.
        """
        from ..extensions.topn import top_n_outliers

        engine, keep = self._ensure_compact()
        result = top_n_outliers(None, n_top, k, engine=engine, rng=rng)
        self.pairs += result.pairs
        result.ids = keep[result.ids]
        return result

    # -- persistence -------------------------------------------------------------

    def save(self, path) -> None:
        """Snapshot graph + alive mask + repaired evidence (versioned)."""
        from ..io import save_mutable_engine

        save_mutable_engine(self, path)

    @classmethod
    def load(cls, path, objects, **kwargs) -> "MutableDetectionEngine":
        """Rebuild a saved mutable engine against its full object log."""
        from ..io import load_mutable_engine

        return load_mutable_engine(path, objects, **kwargs)

    # -- protocol surface --------------------------------------------------------

    capabilities = EngineCapabilities(
        mutable=True, snapshot=True, top_n=True, pinned_radii=True
    )

    @property
    def graph_name(self) -> str:
        return self.rebuild_graph

    @property
    def graph_degree(self) -> int:
        return self.K

    @property
    def index_nbytes(self) -> int:
        """Memory of the serving state (full-space graph + cache)."""
        total = 0
        if self._graph is not None:
            total += self._graph.nbytes
        if self.cache is not None:
            total += self.cache.nbytes
        if self._compact is not None:
            total += self._compact[0].index_nbytes
        return int(total)

    def describe(self) -> str:
        return (
            f"mutable single-process engine, {self.n_active} live / "
            f"{self.n_total} total ids, metric={self.metric.name}"
        )

    @property
    def backend_name(self) -> str:
        return "numpy64" if self._backend is None else self._backend.name

    def backend_stats(self) -> dict:
        """Screen/rescreen counters across every dataset refresh."""
        if self._backend is None:
            return {
                "backend": "numpy64",
                "screen_calls": 0,
                "screened_pairs": 0,
                "rescreened_pairs": 0,
            }
        return self._backend.stats_dict()

    def build_stats(self) -> dict:
        """Per-phase timings of the most recent graph (re)build."""
        if self._graph is None:
            return {}
        return self._graph.build_stats()

    def store_stats(self) -> dict:
        """Object-log accounting (one in-process copy of the log)."""
        if not self._objects:
            nbytes = 0
        elif self.metric.is_vector:
            nbytes = int(np.asarray(self._objects, dtype=np.float64).nbytes)
        else:
            nbytes = int(sum(len(str(o)) for o in self._objects))
        return {
            "kind": "list",
            "length": len(self._objects),
            "nbytes": nbytes,
            "replicas": 1,
            "resident_nbytes": nbytes,
        }

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Shut down the compacted serving engine (if any)."""
        if self._compact is not None:
            engine, _ = self._compact
            self._compact = None
            engine.close()

    def __enter__(self) -> "MutableDetectionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableDetectionEngine(n_active={self.n_active}, "
            f"n_total={self.n_total}, metric={self.metric.name}, "
            f"radii={len(self.cache.radii) if self.cache else 0})"
        )
