"""Mutable sharded serving: churn and multi-process queries on one engine.

The ROADMAP north-star workload — heavy multi-user traffic over a
*changing* dataset — needs both halves the engine family grew
separately: :class:`~repro.engine.sharded.ShardedDetectionEngine`
scales queries across worker processes but is frozen at fit time, and
:class:`~repro.engine.mutable.MutableDetectionEngine` repairs evidence
under churn but is single-process.  This module composes them behind
the same :class:`~repro.engine.protocol.EngineCore` surface:

* **Routing.**  ``insert`` assigns each new object to the least-loaded
  shard and broadcasts the batch; every worker appends the objects to
  its full-log replica (cross-shard verification scans need the raw
  data everywhere, exactly as the static engine ships the full dataset
  to every worker), while the *owning* shard links the newcomers into
  its shard-local proximity graph.
* **Batch-vectorised repair.**  Each owning shard evaluates its
  newcomers against the live collection in **O(1) ``pair_dist``
  sweeps per batch** and repairs its shard-local
  :class:`~repro.engine.evidence.EvidenceCache` through the PR-4
  ``apply_insert``/``apply_delete`` laws in their block form
  (:meth:`EvidenceCache.apply_insert_batch`): per radius, one
  increment vector patches every touched bound at once.  Within-shard
  counts decompose over any partition, so the repaired bounds stay
  exactly as sound as the single-process engine's.
* **Exact merge.**  Queries run the same three-phase conservative
  merge as the static engine (the shared
  :class:`~repro.engine.sharded._ShardMergeBase`), restricted to the
  live ids — answers are **bit-identical** to a fresh scalar oracle on
  the compacted live dataset, enforced by
  ``scripts/check_sharded_mutable_equivalence.py``.
* **Online rebalancing.**  :meth:`split_shard` / :meth:`merge_shards`
  (and the :meth:`rebalance` policy) repartition membership between
  epochs: queries drain on a :meth:`~repro.core.parallel.ShardPool.barrier`,
  only the *affected* shards rebuild their sub-graphs (and restart
  their caches), unaffected shards transplant their state untouched.
  Exactness is indifferent to the partition, so a query issued after a
  split/merge returns the same outlier set as a fresh fit.
"""

from __future__ import annotations

import os
from functools import partial
from typing import Any, Sequence

import numpy as np

from ..core.counting import VisitTracker, classify_chunk_arrays, resolve_filter_mode
from ..core.result import DODResult
from ..core.store import SharedObjectStore
from ..core.traversal import DEFAULT_BLOCK, BlockTracker, foreign_count_block
from ..backends import resolve_backend
from ..data import Dataset, _checked_vector_input
from ..exceptions import GraphError, ParameterError
from ..graphs.adjacency import Graph
from ..graphs.base import build_graph
from ..index.linear import linear_count_block
from ..metrics import Metric, resolve_metric
from ..rng import ensure_rng
from .evidence import NO_BOUND, EvidenceCache, build_delete_evidence
from .protocol import EngineCapabilities
from .sharded import DESCENT_BLOCK, _ShardMergeBase

_EMPTY = np.empty(0, dtype=np.int64)


class MutableShardWorker:
    """One shard of a mutable collection; lives inside a ``ShardPool`` actor.

    Holds a replica of the full object log (append-only; global id =
    log position), the global alive mask, this shard's *membership*
    (which live objects it owns), a shard-local proximity graph over
    the members, and an :class:`EvidenceCache` of **within-shard**
    count bounds indexed by global id.  Mutations arrive as broadcasts:
    every worker appends/retires log entries, the owning worker
    additionally repairs its graph and cache from the batch's own
    distance sweeps.  Queries see a lazily compacted live-member view,
    rebuilt per mutation epoch.

    All public methods return ``(payload..., pairs)`` with the distance
    computations the call performed.
    """

    def __init__(
        self,
        metric: "str | Metric",
        shard_index: int,
        K: int = 16,
        seed: int = 0,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        graph: str = "mrpg",
        cache_radii: "int | None" = None,
        pinned: Sequence[float] = (),
        objects: "Sequence[Any] | None" = None,
        alive: "Sequence[bool] | None" = None,
        member_gids: "Sequence[int] | None" = None,
        graph_state: "Graph | None" = None,
        cache_state: "EvidenceCache | None" = None,
        knn_radii: Sequence[float] = (),
        build: bool = False,
        backend: "str | None" = None,
        shared_store: bool = False,
        store_meta: "dict | None" = None,
        build_workers: "int | None" = None,
    ):
        self.metric = resolve_metric(metric)
        self.shard_index = int(shard_index)
        # Resolved in the worker process: each shard owns its backend
        # instance (screen state + counters), so per-shard backend
        # choices need nothing shared beyond the name.
        self._backend = None if backend is None else resolve_backend(backend)
        self.K = int(K)
        self.graph_name = graph
        # Shard workers are daemon processes, so BuildPool falls back to
        # one in-process worker here — the partitioned build is
        # worker-count-invariant, so results match the parent's anyway.
        self.build_workers = None if build_workers is None else int(build_workers)
        resolve_filter_mode(mode, None)
        self.mode = mode
        self.batch_size = int(batch_size)
        self.cache_radii = cache_radii
        self._rng = ensure_rng(seed)
        self._pinned: set[float] = {float(r) for r in pinned}
        # Zero-copy data plane: instead of a log replica, this worker
        # maps the parent's shared segment and serves over a view.
        self._shared = bool(shared_store) or store_meta is not None
        self._store_handle: "SharedObjectStore | None" = (
            SharedObjectStore.attach(store_meta)
            if store_meta is not None
            else None
        )
        self._n_log: int = (
            int(store_meta["length"]) if store_meta is not None else 0
        )
        self._objects: list[Any] = list(objects) if objects is not None else []
        self._alive: list[bool] = (
            [bool(a) for a in alive]
            if alive is not None
            else [True] * self.n_total
        )
        self._member_gids: list[int] = (
            [int(g) for g in member_gids] if member_gids is not None else []
        )
        self._local_of: dict[int, int] = {
            g: i for i, g in enumerate(self._member_gids)
        }
        self._dataset: Dataset | None = None
        self._banked = 0
        self._descent_tracker: "BlockTracker | None" = None
        self._graph: Graph | None = None
        self.cache: EvidenceCache | None = None
        self._knn_radii: set[float] = set(float(r) for r in knn_radii)
        self._serve: "tuple | None" = None
        if self.n_total:
            self._refresh_dataset()
            self.cache = (
                cache_state
                if cache_state is not None
                else EvidenceCache(self.n_total, max_radii=cache_radii)
            )
            self.cache.max_radii = cache_radii
        if graph_state is not None:
            if graph_state.n != max(1, len(self._member_gids)):
                raise GraphError(
                    f"shard {shard_index}: graph spans {graph_state.n} local "
                    f"vertices for {len(self._member_gids)} members"
                )
            self._graph = graph_state
        elif self._member_gids:
            if build:
                self._build_member_graph()
            else:
                self._graph = Graph(len(self._member_gids))
                self._graph.meta = {"builder": "mutable-shard", "K": self.K}
        # Offline construction work is not query cost.
        self._banked = 0
        if self._dataset is not None:
            self._dataset.reset_counter()

    # -- bookkeeping -------------------------------------------------------

    @property
    def n_total(self) -> int:
        return self._n_log if self._shared else len(self._objects)

    def _refresh_dataset(self) -> None:
        self._bank_pairs()
        if self._shared:
            assert self._store_handle is not None
            self._dataset = Dataset.from_prepared(
                self._store_handle.rows(self._n_log),
                self.metric,
                backend=self._backend,
                kind="shm",
            )
            return
        self._dataset = Dataset(
            np.asarray(self._objects, dtype=np.float64)
            if self.metric.is_vector
            else self._objects,
            self.metric,
            backend=self._backend,
        )

    def store_resident_nbytes(self) -> int:
        """Bytes of object data this actor pins privately.

        Zero on the shared store (the segment is counted once by its
        owner); the full float64 replica otherwise.  Screening state
        (a float32 copy, when a backend is attached) is not included.
        """
        if self._dataset is None:
            return 0
        return int(self._dataset.resident_nbytes)

    def backend_stats(self) -> dict:
        if self._backend is None:
            return {
                "backend": "numpy64",
                "screen_calls": 0,
                "screened_pairs": 0,
                "rescreened_pairs": 0,
            }
        return self._backend.stats_dict()

    def build_stats(self) -> dict:
        """Per-phase timings of this shard's most recent graph build."""
        if self._graph is None:
            return {}
        return self._graph.build_stats()

    def _bank_pairs(self) -> None:
        if self._dataset is not None:
            self._banked += self._dataset.counter.pairs
            self._dataset.reset_counter()
        if self._serve is not None and self._serve[0] is not None:
            self._banked += self._serve[0].counter.pairs
            self._serve[0].counter.reset()

    def _take_pairs(self) -> int:
        self._bank_pairs()
        delta, self._banked = self._banked, 0
        return int(delta)

    def _drop_serve(self) -> None:
        self._bank_pairs()
        self._serve = None
        self._knn_radii.clear()

    def _scan_radii(self) -> list[float]:
        stored = set(self.cache.radii) if self.cache is not None else set()
        return sorted(stored | self._pinned)

    def _live_member_mask(self) -> np.ndarray:
        members = np.asarray(self._member_gids, dtype=np.int64)
        if members.size == 0:
            return np.empty(0, dtype=bool)
        alive = np.asarray(self._alive, dtype=bool)
        return alive[members]

    def _build_member_graph(self) -> None:
        """Fresh proximity graph over the (live) members."""
        members = np.asarray(self._member_gids, dtype=np.int64)
        live_local = np.flatnonzero(self._live_member_mask())
        graph = Graph(max(1, members.size))
        graph.meta = {"builder": f"mutable-shard:{self.graph_name}", "K": self.K}
        if live_local.size > 1:
            assert self._dataset is not None
            sub = self._dataset.subset(members[live_local])
            if live_local.size > self.K + 1:
                built = build_graph(
                    self.graph_name,
                    sub,
                    K=self.K,
                    rng=self._rng,
                    clamp_K=True,
                    build_workers=self.build_workers,
                )
            else:
                built = Graph(live_local.size)
                for u in range(live_local.size):
                    for v in range(u + 1, live_local.size):
                        built.add_edge(u, v)
                built.finalize()
            for cu in range(live_local.size):
                u = int(live_local[cu])
                graph.set_links(
                    u, (int(live_local[w]) for w in built.neighbors_list(cu))
                )
                graph.pivots[u] = built.pivots[cu]
            for cv, (nbr_ids, dists) in built.exact_knn.items():
                graph.exact_knn[int(live_local[cv])] = (
                    live_local[nbr_ids],
                    dists.copy(),
                )
            for key in (
                "build_seconds",
                "phase_seconds",
                "iterations",
                "updates_per_round",
                "build_workers",
                "build_stats",
                "detour_scans",
                "detour_links_added",
                "links_removed",
                "connect_patches",
            ):
                if key in built.meta:
                    graph.meta[key] = built.meta[key]
            self._banked += sub.counter.pairs
        self._graph = graph

    # -- mutation broadcasts -----------------------------------------------

    def ingest(self, objects, first_gid: int, owned_pos: np.ndarray):
        """Append a batch; repair graph + cache for the owned newcomers.

        Every worker appends the full batch to its log replica — or, on
        the shared store, syncs its mapping from the metadata-only
        broadcast (``objects`` is then a :meth:`SharedObjectStore.meta`
        dict, not data); the owned positions are linked into the local
        graph and repaired into the cache from **O(1) ``pair_dist``
        sweeps**: one owned-vs-live matrix covers linking, per-radius
        increments, exact own counts and exact-K'NN list patching at
        once.  Returns the per-newcomer within-radius neighbor dicts
        (global ids) for the owned positions, plus pairs.
        """
        first_gid = int(first_gid)
        if first_gid != self.n_total:
            raise ParameterError(
                f"shard {self.shard_index}: ingest at gid {first_gid} but the "
                f"log holds {self.n_total} objects"
            )
        self._drop_serve()
        if self._shared:
            meta = objects
            # Drop the mapped view *before* syncing: a growth broadcast
            # may carry a relocation, and re-mapping unmaps pages a
            # stale dataset view would still dereference.
            self._bank_pairs()
            self._dataset = None
            if self._store_handle is None:
                self._store_handle = SharedObjectStore.attach(meta)
            else:
                self._store_handle.sync(meta)
            self._n_log = int(meta["length"])
            n_new = self._n_log - first_gid
        else:
            objects = list(objects)
            self._objects.extend(objects)
            n_new = len(objects)
        self._alive.extend([True] * n_new)
        self._refresh_dataset()
        n_total = self.n_total
        if self.cache is None:
            self.cache = EvidenceCache(n_total, max_radii=self.cache_radii)
        else:
            self.cache.grow(n_total)
        owned_pos = np.asarray(owned_pos, dtype=np.int64)
        if owned_pos.size == 0:
            return [], self._take_pairs()
        owned_gids = first_gid + owned_pos
        base_local = len(self._member_gids)
        self._member_gids.extend(int(g) for g in owned_gids)
        for i, g in enumerate(owned_gids):
            self._local_of[int(g)] = base_local + i
        if self._graph is None:
            self._graph = Graph(len(self._member_gids))
            self._graph.meta = {"builder": "mutable-shard", "K": self.K}
        else:
            self._graph.grow(len(self._member_gids))

        assert self._dataset is not None
        alive = np.asarray(self._alive, dtype=bool)
        members = np.asarray(self._member_gids, dtype=np.int64)
        live_members = members[alive[members]]
        radii = self._scan_radii()
        # Scan targets: with maintained radii the owned newcomers must
        # range the whole live collection (foreign rows hold within-
        # shard bounds about them too); otherwise live members suffice
        # for linking and list patching.
        targets = np.flatnonzero(alive) if radii else live_members
        B = owned_gids.size
        neighbors_out: list[dict] = [dict() for _ in range(B)]
        if targets.size:
            bound = (
                None if self._graph.exact_knn or not radii else tuple(radii)
            )
            D = self._dataset.pair_dist(
                np.repeat(owned_gids, targets.size),
                np.tile(targets, B),
                bound=bound, consistent=True,
            ).reshape(B, targets.size)
            D[targets[None, :] == owned_gids[:, None]] = np.inf
            is_member = np.isin(targets, live_members)
            if radii:
                evidence: dict = {}
                for r in radii:
                    within = D <= r
                    inc = within.sum(axis=0)
                    hit = inc > 0
                    evidence[r] = (
                        targets[hit],
                        inc[hit],
                        within[:, is_member].sum(axis=1),
                    )
                self.cache.apply_insert_batch(owned_gids, evidence)
                neighbors_out = [
                    {r: targets[D[i] <= r] for r in radii} for i in range(B)
                ]
            # Linking: K nearest live members per newcomer.
            mem_cols = np.flatnonzero(is_member)
            for i in range(B):
                d_row = D[i, mem_cols]
                finite = np.isfinite(d_row)
                cand = mem_cols[finite]
                if cand.size == 0:
                    continue
                if cand.size > self.K:
                    order = np.argpartition(d_row[finite], self.K - 1)[: self.K]
                    cand = cand[order]
                u = self._local_of[int(owned_gids[i])]
                for c in cand:
                    self._graph.add_edge(u, self._local_of[int(targets[c])])
            self._maintain_exact_knn(owned_gids, targets, D)
        return neighbors_out, self._take_pairs()

    def _maintain_exact_knn(
        self, owned_gids: np.ndarray, targets: np.ndarray, D: np.ndarray
    ) -> None:
        """Patch stored exact-K'NN lists in place for the newcomers."""
        assert self._graph is not None
        if not self._graph.exact_knn:
            return
        col_of = {int(g): j for j, g in enumerate(targets)}
        holders = [
            (h, col_of[int(self._member_gids[h])])
            for h in list(self._graph.exact_knn)
            if int(self._member_gids[h]) in col_of
        ]
        for i in range(owned_gids.size):
            u = self._local_of[int(owned_gids[i])]
            for h, col in holders:
                if h == u:
                    continue
                self._graph.patch_exact_knn(h, u, float(D[i, col]))

    def retire(self, gids: np.ndarray, known: "dict | None" = None):
        """Tombstone a batch of victims; repair what this shard owns.

        Every worker marks the victims dead and resets their cache
        rows; the shards owning some of them additionally repair their
        member bounds from one victims-vs-survivors sweep (or from the
        supplied ``known`` per-radius neighbor lists) and tombstone the
        local graph vertices.
        """
        self._drop_serve()
        gids = np.asarray(gids, dtype=np.int64)
        alive = np.asarray(self._alive, dtype=bool)
        alive[gids] = False
        owned = np.asarray(
            [int(g) for g in gids if int(g) in self._local_of], dtype=np.int64
        )
        radii = self._scan_radii()
        if owned.size and self.cache is not None and radii:
            assert self._dataset is not None
            self.cache.apply_delete_batch(
                owned,
                build_delete_evidence(
                    self._dataset, owned.tolist(), np.flatnonzero(alive),
                    radii, known, self.n_total,
                ),
            )
        if self.cache is not None:
            self.cache.reset_rows(gids)
        if owned.size:
            assert self._graph is not None
            members = np.asarray(self._member_gids, dtype=np.int64)
            local_alive = alive[members]
            self._graph.tombstone_many(
                [self._local_of[int(g)] for g in owned], alive=local_alive
            )
        for g in gids:
            self._alive[int(g)] = False
        return self._take_pairs()

    def pin(self, radii) -> int:
        self._pinned.update(float(r) for r in radii)
        return 0

    def rebuild_local(self) -> int:
        """Fresh sub-graph over the live members (restores exact lists)."""
        self._drop_serve()
        if self._member_gids:
            members = np.asarray(self._member_gids, dtype=np.int64)
            live_local = np.flatnonzero(self._live_member_mask())
            self._member_gids = [int(g) for g in members[live_local]]
            self._local_of = {g: i for i, g in enumerate(self._member_gids)}
            if self._member_gids:
                self._build_member_graph()
            else:
                self._graph = None
        return self._take_pairs()

    def vacuum(
        self,
        keep: np.ndarray,
        remap: np.ndarray,
        store_meta: "dict | None" = None,
    ) -> int:
        """Compact the log replica to ``keep`` (parent-computed remap).

        On the shared store the parent already compacted the segment
        behind the pool barrier; ``store_meta`` carries the relocated
        segment's metadata and this worker re-maps instead of copying.
        """
        self._drop_serve()
        keep = np.asarray(keep, dtype=np.int64)
        remap = np.asarray(remap, dtype=np.int64)
        if self._shared:
            # Compaction always relocates: drop the mapped view first
            # (see ingest), then re-attach the fresh segment.
            self._bank_pairs()
            self._dataset = None
            if store_meta is not None and self._store_handle is not None:
                self._store_handle.sync(store_meta)
            self._n_log = int(keep.size)
        else:
            self._objects = [self._objects[int(g)] for g in keep]
        self._alive = [True] * keep.size
        members = np.asarray(self._member_gids, dtype=np.int64)
        if members.size:
            live_local = np.flatnonzero(remap[members] >= 0)
            assert self._graph is not None
            if live_local.size:
                self._graph, _ = self._graph.compact(live_local)
                self._member_gids = [
                    int(remap[g]) for g in members[live_local]
                ]
            else:
                self._graph = None
                self._member_gids = []
            self._local_of = {g: i for i, g in enumerate(self._member_gids)}
        if keep.size == 0:
            self._dataset = None
            self.cache = None
            return self._take_pairs()
        self._refresh_dataset()
        if self.cache is not None:
            self.cache = self.cache.take(keep)
        return self._take_pairs()

    # -- serving (the merge protocol) --------------------------------------

    def _ensure_serve(self):
        if self._serve is not None:
            return self._serve
        members = np.asarray(self._member_gids, dtype=np.int64)
        live_local = (
            np.flatnonzero(self._live_member_mask()) if members.size else _EMPTY
        )
        if live_local.size == 0:
            self._serve = (None, None, _EMPTY, None, [None], (
                _EMPTY, _EMPTY, np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            ))
            return self._serve
        serve_gids = members[live_local]  # ascending: adoption order is by gid
        assert self._graph is not None and self._dataset is not None
        graph, _ = self._graph.compact(live_local)
        sub = self._dataset.subset(serve_gids)
        self._serve = (
            sub,
            graph,
            serve_gids,
            VisitTracker(int(live_local.size)),
            [None],  # BlockTracker slot, allocated on first batched filter
            graph.exact_knn_arrays(),
        )
        return self._serve

    def _ensure_knn_evidence(self, r: float) -> None:
        _, _, serve_gids, _, _, knn = self._ensure_serve()
        owners, sizes, ptr, dists = knn
        if r in self._knn_radii or owners.size == 0:
            return
        self._knn_radii.add(r)
        within = np.add.reduceat(
            (dists <= r).astype(np.int64), ptr[:-1]
        )
        assert self.cache is not None
        self.cache.record(
            r, serve_gids[owners], within, exact_mask=within < sizes
        )

    def prepare(self, r: float):
        """Phase A: fold the cache; within-shard bounds over the full log.

        A shard with no live members knows every within-shard count is
        exactly zero — it reports that instead of "unknown", so empty
        shards never block the merge's exact upper bounds.
        """
        r = float(r)
        n = self.n_total
        if self.cache is None:
            zero = np.zeros(n, dtype=np.int64)
            return zero, zero.copy(), self._take_pairs()
        _, _, serve_gids, _, _, _ = self._ensure_serve()
        if serve_gids.size == 0:
            zero = np.zeros(n, dtype=np.int64)
            return zero, zero.copy(), self._take_pairs()
        self._ensure_knn_evidence(r)
        return (
            self.cache.lower_bounds(r),
            self.cache.upper_bounds(r),
            self._take_pairs(),
        )

    def filter(self, r: float, k: int, home_gids: np.ndarray):
        """Phase B: shard-local Greedy-Counting over home residue."""
        r, k = float(r), int(k)
        home_gids = np.asarray(home_gids, dtype=np.int64)
        if home_gids.size == 0 or self.cache is None:
            return home_gids, _EMPTY, np.empty(0, bool), self._take_pairs()
        sub, graph, serve_gids, tracker, block_slot, _ = self._ensure_serve()
        if serve_gids.size == 0:
            return (
                np.empty(0, np.int64), _EMPTY, np.empty(0, bool),
                self._take_pairs(),
            )
        lb = self.cache.lower_bounds(r)[home_gids]
        ub = self.cache.upper_bounds(r)[home_gids]
        settled = ((ub != NO_BOUND) & (lb >= ub)) | (lb >= k)
        counts = lb.copy()
        exact = (ub != NO_BOUND) & (lb >= ub)
        walk = np.flatnonzero(~settled)
        if walk.size:
            local = np.searchsorted(serve_gids, home_gids[walk])
            if self.mode != "scalar" and block_slot[0] is None:
                block_slot[0] = BlockTracker(
                    int(serve_gids.size), self.batch_size
                )
            _, w_counts, _, w_exact = classify_chunk_arrays(
                sub, graph, local, r, k,
                tracker=tracker,
                mode=self.mode, batch_size=self.batch_size,
                block_tracker=block_slot[0],
            )
            np.maximum(w_counts, counts[walk], out=w_counts)
            counts[walk] = w_counts
            exact[walk] = w_exact
            self.cache.record(r, home_gids[walk], w_counts, exact_mask=w_exact)
        return home_gids, counts, exact, self._take_pairs()

    def count_descent(self, r: float, ids: np.ndarray, need: np.ndarray):
        """Phase C v2: graph-speed within-shard lower bounds for foreign ids.

        The mutable twin of :meth:`ShardWorker.count_descent`: the
        descent runs over the epoch's compacted serve graph, so counts
        cover exactly the live members — an empty shard answers zeros
        (its prepare already reported exact zeros, so the merge never
        asks).
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        _, graph, serve_gids, _, _, _ = self._ensure_serve()
        if ids.size == 0 or graph is None or serve_gids.size == 0:
            return np.zeros(ids.size, dtype=np.int64), self._take_pairs()
        need = np.broadcast_to(np.asarray(need, dtype=np.int64), ids.shape)
        counts = np.zeros(ids.size, dtype=np.int64)
        block = min(ids.size, DESCENT_BLOCK)
        m = int(serve_gids.size)
        tracker = self._descent_tracker
        if tracker is None or tracker.n != m or tracker.block_size < block:
            tracker = self._descent_tracker = BlockTracker(m, block)
        assert self._dataset is not None
        for lo in range(0, ids.size, block):
            sl = slice(lo, lo + block)
            counts[sl] = foreign_count_block(
                self._dataset, graph, serve_gids, ids[sl], r, need[sl],
                tracker=tracker,
            )
        return counts, self._take_pairs()

    def count_range(self, r: float, ids: np.ndarray, lo: int, hi: int):
        """Phase C: hits among live-member positions ``[lo, hi)``."""
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        _, _, serve_gids, _, _, _ = self._ensure_serve()
        m = int(serve_gids.size)
        lo, hi = int(lo), min(int(hi), m)
        if ids.size == 0 or lo >= hi:
            return np.zeros(ids.size, dtype=np.int64), self._take_pairs()
        span = hi - lo
        idx = serve_gids[lo:hi]
        assert self._dataset is not None
        d = self._dataset.pair_dist(
            np.repeat(ids, span), np.tile(idx, ids.size), bound=r,
            consistent=True,
        )
        add = (d <= r).reshape(ids.size, span).sum(axis=1).astype(np.int64)
        pos = np.searchsorted(serve_gids, ids)
        pos_safe = np.minimum(pos, m - 1)
        own = (serve_gids[pos_safe] == ids) & (pos_safe >= lo) & (pos_safe < hi)
        add[own] -= 1
        return add, self._take_pairs()

    def count_tail(self, r: float, ids: np.ndarray, lo: int):
        """Phase C stall fallback: exhaust live-member positions ``[lo, m)``."""
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        _, _, serve_gids, _, _, _ = self._ensure_serve()
        lo = int(lo)
        if ids.size == 0 or lo >= serve_gids.size:
            return np.zeros(ids.size, dtype=np.int64), self._take_pairs()
        assert self._dataset is not None
        counts = linear_count_block(
            self._dataset, ids, r, subset=serve_gids[lo:]
        )
        return counts, self._take_pairs()

    def record(self, r: float, ids: np.ndarray, counts: np.ndarray,
               exact_mask: np.ndarray):
        """Deposit merged phase-C evidence back into this shard's cache."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and self.cache is not None:
            self.cache.record(
                float(r), ids, np.asarray(counts, dtype=np.int64),
                exact_mask=np.asarray(exact_mask, dtype=bool),
            )
        return 0

    # -- snapshots / diagnostics -------------------------------------------

    def state(self) -> dict:
        """Everything a snapshot or a rebalancing epoch needs."""
        return {
            "graph": self._graph,
            "cache": self.cache,
            "member_gids": list(self._member_gids),
            "knn_radii": sorted(self._knn_radii),
            "pinned": sorted(self._pinned),
        }

    def nbytes(self) -> int:
        total = 0
        if self._graph is not None:
            total += self._graph.nbytes
        if self.cache is not None:
            total += self.cache.nbytes
        return int(total)

    def reset_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()
        self._knn_radii.clear()


def _make_mutable_worker(**kwargs) -> MutableShardWorker:
    """Module-level factory so spawn-based pools can pickle it."""
    return MutableShardWorker(**kwargs)


class MutableShardedDetectionEngine(_ShardMergeBase):
    """Exact DOD serving over a mutable, sharded collection.

    The composition of the mutable and sharded engines behind one
    :class:`~repro.engine.protocol.EngineCore` surface: stable external
    ids over an append-only log, least-loaded insert routing, batched
    evidence repair inside every owning shard, the exact conservative
    merge for queries, and online split/merge rebalancing between
    query epochs.  Answers are bit-identical to the single-process
    :class:`~repro.engine.mutable.MutableDetectionEngine` and to a
    fresh scalar oracle over the live objects.
    """

    def __init__(
        self,
        metric: "str | Metric" = "l2",
        n_shards: int = 2,
        workers: "int | None" = None,
        graph: str = "mrpg",
        K: int = 16,
        seed: "int | None" = 0,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        pinned: Sequence[float] = (),
        cache_radii: "int | None" = None,
        rebuild_every: "int | None" = None,
        start_method: "str | None" = None,
        backend: "str | Sequence[str] | None" = None,
        store: str = "list",
        foreign_descent: bool = True,
        evidence_transfer: bool = True,
        build_workers: "int | None" = None,
    ):
        if n_shards < 1:
            raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
        if K < 1:
            raise ParameterError(f"K must be >= 1, got {K}")
        if rebuild_every is not None and rebuild_every < 1:
            raise ParameterError(
                f"rebuild_every must be >= 1, got {rebuild_every}"
            )
        self.metric = resolve_metric(metric)
        # Object-store choice: "list" replicates the raw log into every
        # shard actor (the historical layout); "shm" keeps one growable
        # shared segment (:class:`~repro.core.store.SharedObjectStore`)
        # that every actor maps zero-copy, and mutation broadcasts carry
        # metadata only.
        store_kind = {"ram": "list"}.get(str(store), str(store))
        if store_kind not in ("list", "shm"):
            raise ParameterError(
                f"store must be 'list' ('ram') or 'shm', got {store!r}"
            )
        if store_kind == "shm" and not self.metric.is_vector:
            raise ParameterError(
                f"store='shm' holds prepared float64 rows; the "
                f"{self.metric.name} metric is not a vector metric"
            )
        self.store_kind = store_kind
        self._store: "SharedObjectStore | None" = None
        self.graph_name = graph
        self.K = int(K)
        resolve_filter_mode(mode, None)
        self.mode = mode
        self.batch_size = int(batch_size)
        self.cache_radii = cache_radii
        self.rebuild_every = rebuild_every
        self.build_workers = None if build_workers is None else int(build_workers)
        self._rng = ensure_rng(seed)
        self._pinned: set[float] = {float(r) for r in pinned}
        self.n_shards = int(n_shards)
        if workers is None:
            workers = min(self.n_shards, os.cpu_count() or 1)
        #: the caller's worker budget; the effective count is re-clamped
        #: to the shard count at every pool (re)spawn, so a merge that
        #: temporarily shrinks the shard count does not permanently
        #: shrink the process pool a later split could use again.
        self._workers_requested = max(1, int(workers))
        self.workers = min(self._workers_requested, self.n_shards)
        self._start_method = start_method
        # Backend spec: a scalar name applies to every shard; a sequence
        # assigns per shard and cycles if rebalancing later changes the
        # shard count (split/merge keeps whatever pattern was given).
        # Resolve each distinct name now so unknown backends and missing
        # optional dependencies fail here, not inside a worker process.
        if backend is None or isinstance(backend, str):
            self._backend_spec: "tuple[str | None, ...]" = (backend,)
        else:
            names = tuple(None if b is None else str(b) for b in backend)
            if len(names) != self.n_shards:
                raise ParameterError(
                    f"backend list has {len(names)} entries for "
                    f"{self.n_shards} shards"
                )
            self._backend_spec = names if names else (None,)
        for name in {b for b in self._backend_spec if b is not None}:
            resolve_backend(name)
        self._objects: list[Any] = []
        self._alive: list[bool] = []
        self._shard_of_list: list[int] = []
        self._mutations_since_rebuild = 0
        self.epoch = 0
        self.pairs = 0
        self.last_insert_neighbors: list[dict[float, np.ndarray]] = []
        self.foreign_descent = bool(foreign_descent)
        self.evidence_transfer = bool(evidence_transfer)
        self.stats = self._fresh_merge_stats()
        self.stats.update({
            "inserts": 0,
            "removes": 0,
            "rebuilds": 0,
            "rebalances": 0,
            "rebalance_pairs": 0,
            "evidence_rows_transferred": 0,
            "evidence_rows_dropped": 0,
        })
        #: entry counts of the most recent evidence split: how many cache
        #: entries the affected shard held before, and how many survived
        #: into the stay + moved halves combined.
        self.last_transfer = {"before": 0, "after": 0}
        if store_kind == "shm":
            # Instance override of the class-level capability flags.
            self.capabilities = EngineCapabilities(
                mutable=True, sharded=True, snapshot=True,
                pinned_radii=True, epoch_barrier=True,
                zero_copy_store=True,
            )
        self._pool = None
        self._spawn_pool([
            {"member_gids": []} for _ in range(self.n_shards)
        ])

    # -- pool lifecycle ----------------------------------------------------

    def _worker_kwargs(self, shard_index: int, state: dict) -> dict:
        kwargs = {
            "metric": self.metric.name,
            "shard_index": shard_index,
            "K": self.K,
            "seed": int(self._rng.integers(0, 2**63 - 1)),
            "mode": self.mode,
            "batch_size": self.batch_size,
            "graph": self.graph_name,
            "cache_radii": self.cache_radii,
            "pinned": sorted(self._pinned | set(state.get("pinned", ()))),
            "objects": (
                None if self.store_kind == "shm" else list(self._objects)
            ),
            "shared_store": self.store_kind == "shm",
            "store_meta": (
                self._store.meta() if self._store is not None else None
            ),
            "alive": list(self._alive),
            "member_gids": state.get("member_gids", []),
            "graph_state": state.get("graph"),
            "cache_state": state.get("cache"),
            "knn_radii": tuple(state.get("knn_radii", ())),
            "build": bool(state.get("build", False)),
            "backend": self._backend_spec[
                shard_index % len(self._backend_spec)
            ],
            "build_workers": self.build_workers,
        }
        return kwargs

    def _spawn_pool(self, shard_states: list[dict]) -> None:
        from ..core.parallel import ShardPool, default_start_method

        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.n_shards = len(shard_states)
        self.workers = min(self._workers_requested, self.n_shards)
        self._shard_load = np.zeros(self.n_shards, dtype=np.int64)
        factories = [
            partial(_make_mutable_worker, **self._worker_kwargs(s, state))
            for s, state in enumerate(shard_states)
        ]
        self._pool = ShardPool(
            factories,
            workers=self.workers,
            start_method=self._start_method or default_start_method(),
        )
        self.epoch += 1

    # -- construction ------------------------------------------------------

    @classmethod
    def fit(cls, objects, **kwargs) -> "MutableShardedDetectionEngine":
        """Bulk-load a collection: shard plan + per-shard graph builds."""
        engine = cls(**kwargs)
        engine.bulk_load(objects)
        return engine

    def bulk_load(self, objects) -> "MutableShardedDetectionEngine":
        """Populate an empty engine in one shot (per-shard ``build_graph``)."""
        objects = list(objects)
        if self.n_total:
            raise ParameterError("bulk_load on a non-empty engine")
        if not objects:
            return self
        from .sharded import plan_shards

        if self.store_kind == "shm":
            n = self._append_prepared(self._prepare_rows(objects))
        else:
            n = len(objects)
            self._objects = objects
        shards = plan_shards(
            n, min(self.n_shards, n), strategy="permuted", rng=self._rng
        )
        self._alive = [True] * n
        self._shard_of_list = [0] * n
        for s, ids in enumerate(shards):
            for g in ids:
                self._shard_of_list[int(g)] = s
        states = [
            {"member_gids": ids.tolist(), "build": True} for ids in shards
        ]
        while len(states) < self.n_shards:
            states.append({"member_gids": []})
        self._spawn_pool(states)
        self.stats["inserts"] += n
        return self

    # -- the object store --------------------------------------------------

    def _prepare_rows(self, objects) -> np.ndarray:
        """Validate and prepare a raw batch for the shared store."""
        return self.metric.prepare(
            _checked_vector_input(objects, self.metric.name)
        )

    def _append_prepared(self, prepared: np.ndarray) -> int:
        """Append prepared rows, creating the store lazily; returns count."""
        if self._store is None:
            self._store = SharedObjectStore(
                dim=int(prepared.shape[1]),
                capacity=max(64, int(prepared.shape[0])),
            )
        self._store.append(prepared)
        return int(prepared.shape[0])

    def _store_rows(self) -> np.ndarray:
        """The shared store's prepared rows (zero-copy view)."""
        if self._store is None:
            raise ParameterError("no objects inserted yet")
        return self._store.rows()

    # -- bookkeeping -------------------------------------------------------

    @property
    def n_total(self) -> int:
        if self.store_kind == "shm":
            return 0 if self._store is None else self._store.length
        return len(self._objects)

    @property
    def n_active(self) -> int:
        return sum(self._alive)

    def active_ids(self) -> np.ndarray:
        return np.flatnonzero(np.asarray(self._alive, dtype=bool))

    def live_objects(self) -> list:
        if self.store_kind == "shm":
            if self._store is None:
                return []
            rows = self._store_rows()
            return [np.array(rows[int(g)]) for g in self.active_ids()]
        return [self._objects[int(g)] for g in self.active_ids()]

    def live_dataset(self) -> Dataset:
        """A fresh :class:`Dataset` over the live objects (compact ids).

        On the shared store the rows are already prepared (preparation
        is row-wise), so the gather is wrapped without re-preparing —
        bit-identical to preparing the raw objects once.
        """
        if self.store_kind == "shm":
            keep = self.active_ids()
            return Dataset.from_prepared(
                np.ascontiguousarray(self._store_rows()[keep]), self.metric
            )
        objects = self.live_objects()
        return Dataset(
            np.asarray(objects, dtype=np.float64)
            if self.metric.is_vector
            else objects,
            self.metric,
        )

    def object_log(self) -> list:
        if self.store_kind == "shm":
            if self._store is None:
                return []
            return [np.array(row) for row in self._store_rows()]
        return list(self._objects)

    def log_dataset(self) -> Dataset:
        """The full log (dead rows included), prepared exactly once.

        Snapshot fingerprints are computed over this: the shared store
        already holds once-prepared rows (re-preparing an angular store
        would re-normalise and change bits), the list store prepares its
        raw log here.
        """
        if self.store_kind == "shm":
            return Dataset.from_prepared(self._store_rows(), self.metric)
        return Dataset(
            np.asarray(self._objects, dtype=np.float64)
            if self.metric.is_vector
            else self._objects,
            self.metric,
        )

    def _adopt_log(self, objects) -> None:
        """Install a full insertion log on an empty engine (io load path)."""
        if self.n_total:
            raise ParameterError("_adopt_log on a non-empty engine")
        if self.store_kind == "shm":
            self._append_prepared(self._prepare_rows(list(objects)))
        else:
            self._objects = list(objects)

    def shard_sizes(self) -> np.ndarray:
        """Live member count per shard."""
        alive = np.asarray(self._alive, dtype=bool)
        shard_of = np.asarray(self._shard_of_list, dtype=np.int64)
        if shard_of.size == 0:
            return np.zeros(self.n_shards, dtype=np.int64)
        return np.bincount(shard_of[alive], minlength=self.n_shards)

    # -- merge hooks (the live population) ---------------------------------

    def _live_ids(self) -> np.ndarray:
        return self.active_ids()

    def _home_shards(self, ids: np.ndarray) -> np.ndarray:
        return np.asarray(self._shard_of_list, dtype=np.int64)[ids]

    def _scan_sizes(self) -> np.ndarray:
        return self.shard_sizes()

    def _budget_dataset(self):
        live = self.active_ids()
        if self.store_kind == "shm":
            return Dataset.from_prepared(
                np.ascontiguousarray(self._store_rows()[live[:1]]),
                self.metric,
            )
        probe = [self._objects[int(live[0])]]
        return Dataset(
            np.asarray(probe, dtype=np.float64)
            if self.metric.is_vector
            else probe,
            self.metric,
        )

    def _method_label(self) -> str:
        return (
            f"mutable-sharded[{self.n_shards}x{self.workers}]:"
            f"{self.graph_name}"
        )

    # -- mutation ----------------------------------------------------------

    def insert(self, objects: Sequence[Any]) -> np.ndarray:
        """Append a block of objects; returns their stable global ids.

        Each newcomer routes to the **least-loaded shard** (live member
        count, updated within the batch); one broadcast carries the
        whole batch — on the shared store, only the segment metadata —
        and each owning shard repairs its graph and cache from O(1)
        distance sweeps.
        """
        objects = list(objects)
        if not objects:
            self.last_insert_neighbors = []
            return _EMPTY
        first_gid = self.n_total
        if self.store_kind == "shm":
            # Validate and prepare *before* any bookkeeping mutates, so
            # a bad batch (ragged, non-finite, wrong dim) aborts clean.
            prepared = self._prepare_rows(objects)
            B = int(prepared.shape[0])
        else:
            prepared = None
            B = len(objects)
        sizes = self.shard_sizes().astype(np.int64)
        owner = np.empty(B, dtype=np.int64)
        for i in range(B):
            s = int(np.argmin(sizes))
            owner[i] = s
            sizes[s] += 1
        if prepared is not None:
            self._append_prepared(prepared)
            payload = self._store.meta()
        else:
            self._objects.extend(objects)
            payload = objects
        self._alive.extend([True] * B)
        self._shard_of_list.extend(int(s) for s in owner)
        shard_args = [
            (payload, first_gid, np.flatnonzero(owner == s))
            for s in range(self.n_shards)
        ]
        results = self._pool.call("ingest", shard_args=shard_args)
        self.last_insert_neighbors = [dict() for _ in range(B)]
        for s, (neighbor_dicts, shard_pairs) in enumerate(results):
            self.pairs += shard_pairs
            for pos, nbrs in zip(np.flatnonzero(owner == s), neighbor_dicts):
                self.last_insert_neighbors[int(pos)] = nbrs
        self._spread_pinned_counts(first_gid, B)
        # Public contract (shared with MutableDetectionEngine): a
        # newcomer's recorded scan lists what was live when it arrived —
        # the prior population plus the *earlier* members of its own
        # batch.  The owner's scan returned final-state sets (which the
        # pinned-count spreading above needs); trim to the contract.
        for i, nbrs in enumerate(self.last_insert_neighbors):
            gid = first_gid + i
            for r_key in list(nbrs):
                within = np.asarray(nbrs[r_key], dtype=np.int64)
                nbrs[r_key] = within[within < gid]
        self.stats["inserts"] += B
        self._mutations_since_rebuild += B
        return np.arange(first_gid, first_gid + B, dtype=np.int64)

    def _spread_pinned_counts(self, first_gid: int, B: int) -> None:
        """Give every shard the newcomers' exact counts at pinned radii.

        The owning shard's insert scan ranged each newcomer against the
        *whole* live collection, so its within-``r`` sets decompose by
        membership into exact within-shard counts for **every** shard —
        routed here as pure bookkeeping (no further distances).  This
        is what keeps a pinned-radius detect a phase-A cache decision
        on the sharded engine too (the exact-STORM streaming substrate).
        """
        if not self._pinned or B == 0:
            return
        shard_of = np.asarray(self._shard_of_list, dtype=np.int64)
        new_ids = np.arange(first_gid, first_gid + B, dtype=np.int64)
        exact = np.ones(B, dtype=bool)
        for r in sorted(self._pinned):
            counts = np.zeros((self.n_shards, B), dtype=np.int64)
            for i, nbrs in enumerate(self.last_insert_neighbors):
                within = nbrs.get(r)
                if within is None:
                    return  # scan did not cover the pinned radius
                if len(within):
                    counts[:, i] = np.bincount(
                        shard_of[np.asarray(within, dtype=np.int64)],
                        minlength=self.n_shards,
                    )
            self._pool.call("record", shard_args=[
                (r, new_ids, counts[s], exact) for s in range(self.n_shards)
            ])

    def remove(
        self,
        ids: Sequence[int],
        known_neighbors: "dict[int, dict[float, np.ndarray]] | None" = None,
    ) -> None:
        """Tombstone objects everywhere; owning shards repair their caches."""
        id_list = [int(raw) for raw in ids]
        for v in id_list:
            if not 0 <= v < self.n_total or not self._alive[v]:
                raise ParameterError(f"id {v} is not an active object")
        if len(set(id_list)) != len(id_list):
            raise ParameterError("remove: duplicate ids")
        if not id_list:
            return
        victims = np.asarray(id_list, dtype=np.int64)
        if self._store is not None:
            # Deletes never touch the data plane: tombstoned offsets are
            # bookkeeping until a vacuum epoch compacts the segment.
            self._store.tombstone(victims)
        shard_args = []
        for s in range(self.n_shards):
            known_s = None
            if known_neighbors:
                known_s = {
                    v: known_neighbors[v]
                    for v in id_list
                    if self._shard_of_list[v] == s and v in known_neighbors
                } or None
            shard_args.append((victims, known_s))
        for shard_pairs in self._pool.call("retire", shard_args=shard_args):
            self.pairs += shard_pairs
        for v in id_list:
            self._alive[v] = False
        self.stats["removes"] += len(id_list)
        self._mutations_since_rebuild += len(id_list)

    def pin(self, *radii: float) -> None:
        """Maintain exact evidence at these radii through future mutations."""
        self._pinned.update(float(r) for r in radii)
        self._pool.call("pin", common=(tuple(self._pinned),))

    def vacuum(self) -> np.ndarray:
        """Drop tombstoned storage everywhere, renumbering live ids.

        On the shared store this is the **compaction epoch**: in-flight
        shard work drains on the pool barrier, the owner relocates the
        segment to exactly the surviving rows (generation bump), and the
        vacuum broadcast hands every worker the new segment's metadata
        to re-map.
        """
        keep = self.active_ids()
        remap = np.full(self.n_total, -1, dtype=np.int64)
        remap[keep] = np.arange(keep.size)
        if self.store_kind == "shm":
            store_meta = None
            if self._store is not None:
                self._pool.barrier()
                self._store.compact(keep)
                store_meta = self._store.meta()
            common = (keep, remap, store_meta)
        else:
            common = (keep, remap)
        for shard_pairs in self._pool.call("vacuum", common=common):
            self.pairs += shard_pairs
        if self.store_kind != "shm":
            self._objects = [self._objects[int(g)] for g in keep]
        self._alive = [True] * keep.size
        self._shard_of_list = [
            self._shard_of_list[int(g)] for g in keep
        ]
        self.epoch += 1
        return remap

    def rebuild(self) -> None:
        """Rebuild every shard's sub-graph over its live members."""
        for shard_pairs in self._pool.call("rebuild_local"):
            self.pairs += shard_pairs
        self._mutations_since_rebuild = 0
        self.stats["rebuilds"] += 1

    # -- rebalancing -------------------------------------------------------

    def split_shard(self, shard: "int | None" = None) -> int:
        """Split the (given or largest) shard in two; returns the new index.

        The split is an **epoch boundary**: in-flight queries drain on
        the pool barrier, every worker's state is collected, and a new
        pool starts with ``S + 1`` actors — the source shard and the
        new shard rebuild their sub-graphs over their halves (fresh
        caches), every other shard transplants its graph and evidence
        untouched.
        """
        sizes = self.shard_sizes()
        s = int(np.argmax(sizes)) if shard is None else int(shard)
        if not 0 <= s < self.n_shards:
            raise ParameterError(f"split_shard: no shard {s}")
        members = np.flatnonzero(
            np.asarray(self._alive, dtype=bool)
            & (np.asarray(self._shard_of_list, dtype=np.int64) == s)
        )
        if members.size < 2:
            raise ParameterError(
                f"split_shard: shard {s} holds {members.size} live members"
            )
        halves = np.array_split(self._rng.permutation(members), 2)
        stay, move = np.sort(halves[0]), np.sort(halves[1])
        new_index = self.n_shards
        states = self._collect_states()
        stay_cache = move_cache = None
        if self.evidence_transfer:
            stay_cache, move_cache = self._split_evidence(
                states[s].get("cache"), move
            )
        states[s] = {
            "member_gids": stay.tolist(), "build": True,
            "cache": stay_cache,
        }
        states.append({
            "member_gids": move.tolist(), "build": True,
            "cache": move_cache,
        })
        for g in move:
            self._shard_of_list[int(g)] = new_index
        self._spawn_pool(states)
        self.stats["rebalances"] += 1
        return new_index

    def merge_shards(
        self, source: "int | None" = None, target: "int | None" = None
    ) -> int:
        """Fold the (given or smallest) shard into another; returns target.

        The source's members move to the target shard (which rebuilds
        its sub-graph over the union, fresh cache); every other shard
        transplants.  Shard indices above the source shift down by one.
        """
        if self.n_shards < 2:
            raise ParameterError("merge_shards needs at least two shards")
        sizes = self.shard_sizes()
        if source is None:
            source = int(np.argmin(sizes))
        if target is None:
            order = np.argsort(sizes)
            target = int(order[0]) if int(order[0]) != source else int(order[1])
        source, target = int(source), int(target)
        if source == target or not (
            0 <= source < self.n_shards and 0 <= target < self.n_shards
        ):
            raise ParameterError(
                f"merge_shards: bad pair ({source}, {target})"
            )
        states = self._collect_states()
        alive = np.asarray(self._alive, dtype=bool)
        shard_of = np.asarray(self._shard_of_list, dtype=np.int64)
        union = np.flatnonzero(
            alive & ((shard_of == source) | (shard_of == target))
        )
        merged_cache = None
        if self.evidence_transfer:
            merged_cache = self._merge_evidence(
                states[source].get("cache"), states[target].get("cache")
            )
        states[target] = {
            "member_gids": union.tolist(), "build": True,
            "cache": merged_cache,
        }
        del states[source]
        remap = {
            old: (old if old < source else old - 1)
            for old in range(self.n_shards)
        }
        remap[source] = remap[target]
        self._shard_of_list = [
            remap[s] for s in self._shard_of_list
        ]
        self._spawn_pool(states)
        self.stats["rebalances"] += 1
        return remap[target]

    def _split_evidence(
        self, cache: "EvidenceCache | None", move: np.ndarray
    ) -> "tuple[EvidenceCache | None, EvidenceCache | None]":
        """Decompose one shard's evidence into stay + moved halves.

        Within-shard counts decompose over any partition of the member
        set, so for every cached row the *moved* contribution — the
        exact neighbor count inside ``move`` at each stored radius — is
        subtracted from the stay half's bounds and becomes the moved
        half's exact rows (:meth:`EvidenceCache.split_by_counts`).  The
        counting sweep is rows x move, orders of magnitude cheaper than
        the evidence the transfer preserves, and its pairs are charged
        to ``stats['rebalance_pairs']``.
        """
        if cache is None:
            return None, None
        rows = cache.nonvacuous_rows()
        radii = cache.radii
        if rows.size == 0 or not radii or move.size == 0:
            return cache, None
        before = cache.entry_count()
        ds = self.log_dataset()
        counts: dict[float, np.ndarray] = {}
        for r in radii:
            counts[float(r)] = linear_count_block(
                ds, rows, float(r), subset=move
            )
            pairs = int(rows.size) * int(move.size)
            self.pairs += pairs
            self.stats["rebalance_pairs"] += pairs
        stay_cache, move_cache = cache.split_by_counts(rows, counts)
        after = stay_cache.entry_count() + move_cache.entry_count()
        self.stats["evidence_rows_transferred"] += after
        self.stats["evidence_rows_dropped"] += max(0, before - after)
        self.last_transfer = {"before": int(before), "after": int(after)}
        return stay_cache, move_cache

    def _merge_evidence(
        self,
        source: "EvidenceCache | None",
        target: "EvidenceCache | None",
    ) -> "EvidenceCache | None":
        """Combine two shards' evidence for their merged member union.

        Within-union counts are the sum of within-source and
        within-target counts, so lower bounds add, and upper bounds add
        where both halves know one (:meth:`EvidenceCache.merged_with`).
        """
        if source is None or target is None:
            merged = source if target is None else target
        else:
            merged = target.merged_with(source)
        before = sum(
            c.entry_count() for c in (source, target) if c is not None
        )
        after = 0 if merged is None else merged.entry_count()
        self.stats["evidence_rows_transferred"] += after
        self.stats["evidence_rows_dropped"] += max(0, before - after)
        self.last_transfer = {"before": int(before), "after": int(after)}
        return merged

    def rebalance(
        self,
        split_above: float = 2.0,
        merge_below: float = 0.25,
        load_above: "float | None" = None,
    ) -> bool:
        """One automatic rebalancing step; ``True`` if anything changed.

        Splits a shard holding more than ``split_above`` times the mean
        live load; otherwise merges a shard starved below
        ``merge_below`` times the mean (keeping at least one shard).

        ``load_above`` adds a *serve-time* trigger on top of the size
        policy: when set, a shard whose observed load factor (mean of
        its mean-normalised verification-pair share and busy-seconds
        share, :meth:`shard_load`) exceeds ``load_above`` is split even
        though sizes are balanced — hot shards that dominate phase-C
        verification stop serialising the merge.
        """
        if split_above <= 1.0 or not 0.0 <= merge_below < 1.0:
            raise ParameterError(
                "rebalance needs split_above > 1 and 0 <= merge_below < 1"
            )
        if load_above is not None and load_above <= 1.0:
            raise ParameterError(
                f"rebalance needs load_above > 1, got {load_above}"
            )
        sizes = self.shard_sizes()
        if self.n_active == 0:
            return False
        mean = self.n_active / self.n_shards
        if sizes.max() > split_above * mean and sizes.max() >= 2:
            self.split_shard(int(np.argmax(sizes)))
            return True
        if self.n_shards > 1 and sizes.min() < merge_below * mean:
            self.merge_shards(int(np.argmin(sizes)))
            return True
        if load_above is not None:
            load = self.shard_load()
            hot = int(np.argmax(load))
            if load[hot] > float(load_above) and sizes[hot] >= 2:
                self.split_shard(hot)
                return True
        return False

    def _collect_states(self) -> list[dict]:
        """Drain the pool and fetch every worker's transplantable state."""
        self._pool.barrier()
        return list(self._pool.call("state"))

    # -- queries -----------------------------------------------------------

    def query(self, r: float, k: int) -> DODResult:
        if self.n_active == 0:
            raise ParameterError("detect before any insert")
        if (
            self.rebuild_every is not None
            and self._mutations_since_rebuild >= self.rebuild_every
        ):
            self.rebuild()
        result = super().query(r, k)
        self.pairs += result.pairs
        return result

    def detect(self, r: float, k: int) -> DODResult:
        """Alias for :meth:`query` (the mutable engines' historical verb)."""
        return self.query(r, k)

    # -- persistence -------------------------------------------------------

    def shard_states(self) -> list[dict]:
        """Per-shard transplantable state fetched from the workers."""
        return self._collect_states()

    def save(self, path) -> None:
        """Snapshot the engine as a versioned directory."""
        from ..io import save_mutable_sharded_engine

        save_mutable_sharded_engine(self, path)

    @classmethod
    def load(cls, path, objects, **kwargs) -> "MutableShardedDetectionEngine":
        """Rebuild a saved engine against its full object log."""
        from ..io import load_mutable_sharded_engine

        return load_mutable_sharded_engine(path, objects, **kwargs)

    # -- protocol surface --------------------------------------------------

    capabilities = EngineCapabilities(
        mutable=True, sharded=True, snapshot=True, pinned_radii=True,
        epoch_barrier=True,
    )

    @property
    def graph_degree(self) -> int:
        return self.K

    @property
    def index_nbytes(self) -> int:
        return int(sum(self._pool.call("nbytes")))

    def describe(self) -> str:
        return (
            f"mutable sharded engine, {self.n_active} live / "
            f"{self.n_total} total ids, {self.n_shards} shards on "
            f"{self.workers} worker process(es), epoch {self.epoch}"
        )

    @property
    def backend_name(self) -> str:
        """The numeric backend(s) in use, ``+``-joined when mixed."""
        return "+".join(
            sorted({b or "numpy64" for b in self._backend_spec})
        )

    def backend_stats(self) -> dict:
        """Screen/rescreen counters summed across shard workers."""
        out: dict = {
            "backend": self.backend_name,
            "screen_calls": 0,
            "screened_pairs": 0,
            "rescreened_pairs": 0,
        }
        per_shard = [] if self._pool is None else self._pool.call(
            "backend_stats"
        )
        for entry in per_shard:
            for key in ("screen_calls", "screened_pairs", "rescreened_pairs"):
                out[key] += int(entry.get(key, 0))
        out["per_shard"] = list(per_shard)
        return out

    def build_stats(self) -> dict:
        """Per-shard graph-build phase timings (most recent builds)."""
        per_shard = [] if self._pool is None else self._pool.call(
            "build_stats"
        )
        total = 0.0
        for entry in per_shard:
            total += float(entry.get("build_seconds", 0.0) or 0.0)
        return {
            "build_workers": self.build_workers,
            "build_seconds": total,
            "per_shard": list(per_shard),
        }

    def store_stats(self) -> dict:
        """Object-store accounting (``/stats`` and the benchmarks).

        ``replicas`` counts copies of the object log across the engine
        family: one per shard actor plus the parent's on the list
        store, exactly one shared segment on the shm store.
        ``resident_nbytes`` is the total bytes those copies pin.
        """
        if self.store_kind == "shm":
            if self._store is None:
                return {
                    "kind": "shm", "length": 0, "capacity": 0,
                    "generation": 0, "tombstones": 0, "nbytes": 0,
                    "replicas": 1, "resident_nbytes": 0,
                }
            out = self._store.stats()
            out["replicas"] = 1
            out["resident_nbytes"] = int(out["nbytes"])
            return out
        if not self._objects:
            nbytes = 0
        elif self.metric.is_vector:
            nbytes = int(np.asarray(self._objects, dtype=np.float64).nbytes)
        else:
            nbytes = int(sum(len(str(o)) for o in self._objects))
        replicas = self.n_shards + 1
        return {
            "kind": "list",
            "length": len(self._objects),
            "nbytes": nbytes,
            "replicas": replicas,
            "resident_nbytes": nbytes * replicas,
        }

    def worker_store_nbytes(self) -> "list[int]":
        """Per-actor private bytes pinned by each worker's dataset."""
        return [int(b) for b in self._pool.call("store_resident_nbytes")]

    def reset_cache(self) -> None:
        """Drop accumulated evidence in every shard."""
        self._pool.call("reset_cache")

    def close(self) -> None:
        """Shut down the worker pool and destroy the shared segment.

        The store is unlinked even when pool shutdown fails (a killed
        worker mid-mutation must not leak ``/dev/shm`` entries).
        """
        try:
            if self._pool is not None:
                self._pool.close()
        finally:
            self._pool = None
            if self._store is not None:
                self._store.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableShardedDetectionEngine(n_active={self.n_active}, "
            f"n_total={self.n_total}, shards={self.n_shards}, "
            f"workers={self.workers}, metric={self.metric.name})"
        )
