"""Multi-query detection engine: fit once, answer ``(r, k)`` streams.

The paper's offline/online split builds one proximity graph to serve
many online queries, but each :func:`~repro.core.dod.graph_dod` call
still starts from zero.  :class:`DetectionEngine` makes the graph (plus
the verifier and a :class:`~repro.engine.evidence.EvidenceCache`) a
long-lived serving asset:

* every query deposits proven count bounds per object;
* later queries decide most objects straight from those bounds via the
  monotonicity of neighbor counts in ``r`` and of the outlier predicate
  in ``(r, k)`` — only the undecided residue touches the graph;
* filter/verify work for the residue runs on one persistent
  :class:`~repro.core.parallel.WorkerPool` with per-worker
  :class:`~repro.core.counting.VisitTracker` scratch, shared across the
  whole query stream.

Answers are **exactly** the :func:`graph_dod` outlier sets: the cache
only ever stores proven bounds, and the residue path is Algorithm 1
itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.counting import (
    CANDIDATE_CODE,
    OUTLIER_CODE,
    VisitTracker,
    classify_chunk_arrays,
    resolve_filter_mode,
)
from ..core.parallel import WorkerPool
from ..core.traversal import DEFAULT_BLOCK, BlockTracker
from ..core.result import DODResult, ObjectEvidence
from ..core.verify import Verifier
from ..data import Dataset
from ..exceptions import GraphError, ParameterError
from ..graphs.adjacency import Graph
from ..graphs.base import build_graph
from ..metrics import Metric
from ..rng import ensure_rng
from .evidence import NO_BOUND, EvidenceCache
from .protocol import EngineCapabilities


@dataclass
class SweepResult:
    """Outcome of one :meth:`DetectionEngine.sweep` over an ``(r, k)`` grid."""

    queries: list[tuple[float, int]]
    results: dict[tuple[float, int], DODResult] = field(default_factory=dict)

    def result(self, r: float, k: int) -> DODResult:
        return self.results[(float(r), int(k))]

    @property
    def seconds(self) -> float:
        return sum(res.seconds for res in self.results.values())

    @property
    def pairs(self) -> int:
        return sum(res.pairs for res in self.results.values())

    def summary(self) -> str:
        lines = [
            f"sweep over {len(self.queries)} queries: "
            f"{self.seconds:.3f}s, {self.pairs:,} distance computations"
        ]
        for r, k in self.queries:
            res = self.results[(r, k)]
            lines.append(
                f"  r={r:g} k={k}: {res.n_outliers} outliers in "
                f"{res.seconds:.3f}s ({res.counts.get('cache_decided', 0)} "
                f"cache-decided)"
            )
        return "\n".join(lines)


def _sweep_order(queries: list[tuple[float, int]]) -> list[tuple[float, int]]:
    """Reuse-maximising processing order: ``r`` ascending, ``k`` descending.

    Inlier lower bounds (the bulk of every dataset) transfer from small
    radii to large ones, and a bound of ``k`` proved at the largest ``k``
    settles every smaller ``k`` at the same radius for free.
    """
    return sorted(queries, key=lambda q: (q[0], -q[1]))


class DetectionEngine:
    """Serve streams of exact ``(r, k)`` DOD queries over one fitted index.

    Every answer is bit-identical to a fresh
    :func:`~repro.core.dod.graph_dod` run; the evidence cache only ever
    stores proven count bounds, exploited through monotonicity in
    ``(r, k)``.

    Example
    -------
    >>> import numpy as np
    >>> points = np.random.default_rng(0).normal(size=(150, 4))
    >>> engine = DetectionEngine.fit(points, metric="l2", graph="kgraph", K=6)
    >>> cold = engine.query(r=1.5, k=8)          # cold: full Algorithm 1
    >>> warm = engine.query(r=1.5, k=8)          # warm: pure cache hit
    >>> bool(np.array_equal(cold.outliers, warm.outliers))
    True
    >>> warm.pairs                               # no distance computations
    0
    >>> grid = engine.sweep([1.4, 1.5, 1.6], k_grid=[5, 8])
    >>> len(grid.results)
    6
    >>> engine.close()
    """

    def __init__(
        self,
        dataset: Dataset,
        graph: Graph,
        verifier: Verifier | None = None,
        n_jobs: int = 1,
        rng: "int | np.random.Generator | None" = 0,
        max_visits: int | None = None,
        follow_pivots: bool | None = None,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        cache_radii: int | None = None,
        memo_outliers: bool = True,
        memo_budget: int | None = None,
        backend: "str | None" = None,
    ):
        if graph.n != dataset.n:
            raise GraphError(
                f"graph has {graph.n} vertices but dataset has {dataset.n} objects"
            )
        if not graph.finalized:
            graph.finalize()
        if backend is not None:
            dataset.set_backend(backend)
        self.dataset = dataset
        self.graph = graph
        self.verifier = verifier if verifier is not None else Verifier(dataset)
        self.max_visits = max_visits
        self.follow_pivots = follow_pivots
        resolve_filter_mode(mode, max_visits)  # fail fast on bad combinations
        self.mode = mode
        self.batch_size = int(batch_size)
        self.cache = EvidenceCache(dataset.n, max_radii=cache_radii)
        # Distance-memoised outlier re-verification: a confirmed outlier
        # that comes up as a candidate *again* (an ascending-r sweep
        # re-verifies every outlier at every radius) gets its full
        # sorted distance vector stored once; every later radius then
        # decides it with one binary search instead of a linear scan.
        # The default budget is byte-denominated (each vector is ~8n
        # bytes): roughly 64 MiB, never more than n vectors, at least a
        # handful so small datasets still benefit.
        self.memo_outliers = bool(memo_outliers)
        self._memo_budget = (
            int(memo_budget) if memo_budget is not None
            else min(
                dataset.n,
                max(16, (64 * 1024 * 1024) // max(1, 8 * dataset.n)),
            )
        )
        self._memo: dict[int, np.ndarray] = {}
        self._memo_radii: set[float] = set()
        self._prior_outliers: set[int] = set()
        self._memo_view = dataset.view()
        self.stats: dict[str, int] = {
            "queries": 0,
            "cache_decided": 0,
            "filtered": 0,
            "verified": 0,
            "memoised": 0,
        }
        self._pool = WorkerPool(dataset, n_jobs=n_jobs, rng=ensure_rng(rng))
        self._trackers = [VisitTracker(graph.n) for _ in range(self._pool.n_jobs)]
        # Batched-mode scratch, one per worker slot, allocated on first use
        # (a slot's stamp matrix is batch_size x n).
        self._block_trackers: list[BlockTracker | None] = [
            None for _ in range(self._pool.n_jobs)
        ]
        # Exact-K'NN payloads as flat arrays (shared with the batched
        # filter) so one vectorised pass per new radius turns them into
        # count evidence for every holder at once.
        (
            self._knn_owners,
            self._knn_sizes,
            self._knn_ptr,
            self._knn_dists,
        ) = graph.exact_knn_arrays()
        self._knn_radii: set[float] = set()

    # -- construction helpers ------------------------------------------------

    @classmethod
    def fit(
        cls,
        objects,
        metric: "str | Metric" = "l2",
        graph: str = "mrpg",
        K: int = 16,
        seed: "int | None" = 0,
        verify: str = "auto",
        n_jobs: int = 1,
        max_visits: int | None = None,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        cache_radii: int | None = None,
        memo_outliers: bool = True,
        memo_budget: int | None = None,
        backend: "str | None" = None,
        build_workers: "int | None" = None,
        **graph_params,
    ) -> "DetectionEngine":
        """Offline phase in one call: dataset + graph + verifier + engine.

        ``build_workers`` moves graph construction onto the process-
        parallel, worker-count-invariant path (see
        :mod:`repro.graphs.parallel_build`); ``None`` keeps the legacy
        sequential build.
        """
        gen = ensure_rng(seed)
        dataset = Dataset(objects, metric)
        built = build_graph(
            graph, dataset, K=K, rng=gen, build_workers=build_workers,
            **graph_params,
        )
        verifier = Verifier(dataset, strategy=verify, rng=gen)
        return cls(
            dataset,
            built,
            verifier=verifier,
            n_jobs=n_jobs,
            rng=gen,
            max_visits=max_visits,
            mode=mode,
            batch_size=batch_size,
            cache_radii=cache_radii,
            memo_outliers=memo_outliers,
            memo_budget=memo_budget,
            backend=backend,
        )

    @property
    def n(self) -> int:
        return self.dataset.n

    @property
    def n_jobs(self) -> int:
        return self._pool.n_jobs

    # -- evidence ----------------------------------------------------------

    def _ensure_knn_evidence(self, r: float) -> None:
        """Turn stored exact-K'NN distances into count evidence at ``r``.

        A holder whose within-``r`` prefix stops before the end of its
        list has an *exact* count (the next nearest neighbor is already
        beyond ``r``); a fully-within list yields the lower bound K'.
        """
        r = float(r)
        if r in self._knn_radii or self._knn_owners.size == 0:
            return
        self._knn_radii.add(r)
        within = np.add.reduceat(
            (self._knn_dists <= r).astype(np.int64), self._knn_ptr[:-1]
        )
        self.cache.record(
            r, self._knn_owners, within, exact_mask=within < self._knn_sizes
        )

    def ingest(self, evidence: ObjectEvidence) -> None:
        """Warm the cache with evidence from an external ``graph_dod`` run
        (``collect_evidence=True``) over the *same* dataset."""
        if evidence.n != self.n:
            raise ParameterError(
                f"evidence covers {evidence.n} objects, engine holds {self.n}"
            )
        self.cache.ingest(evidence)

    def _ensure_memo_evidence(self, r: float) -> None:
        """Decide every memoised outlier at ``r`` by binary search."""
        r = float(r)
        if r in self._memo_radii:
            return
        self._memo_radii.add(r)
        if not self._memo:
            return
        ids = np.fromiter(self._memo, dtype=np.int64, count=len(self._memo))
        counts = np.asarray(
            [np.searchsorted(self._memo[int(p)], r, side="right") for p in ids],
            dtype=np.int64,
        )
        self.cache.record(r, ids, counts, exact_mask=np.ones(ids.size, dtype=bool))

    def _memoise(self, p: int, r: float) -> int:
        """Store ``p``'s sorted distance vector; record exact counts.

        Returns ``p``'s exact neighbor count at ``r``.  Costs one full
        linear scan — the same work verifying a true outlier costs —
        after which *every* radius decides ``p`` for free.
        """
        d = self._memo_view.dist_many(p, np.arange(self.n, dtype=np.int64))
        d = np.delete(d, p)
        d.sort()
        self._memo[p] = d
        self.stats["memoised"] += 1
        for radius in self._memo_radii | {float(r)}:
            count = int(np.searchsorted(d, radius, side="right"))
            self.cache.record(
                radius, np.asarray([p]), np.asarray([count]),
                exact_mask=np.asarray([True]),
            )
        return int(np.searchsorted(d, float(r), side="right"))

    # -- the online path ------------------------------------------------------

    def query(
        self, r: float, k: int, collect_evidence: bool = False
    ) -> DODResult:
        """Exact ``(r, k)`` outliers, reusing everything prior queries proved."""
        if r < 0:
            raise ParameterError(f"radius must be non-negative, got {r}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        r = float(r)
        k = int(k)
        graph, verifier = self.graph, self.verifier

        # -- cache phase: decide objects from proven bounds ------------------
        t0 = time.perf_counter()
        self._ensure_knn_evidence(r)
        self._ensure_memo_evidence(r)
        lb = self.cache.lower_bounds(r)
        ub = self.cache.upper_bounds(r)
        inlier_mask = lb >= k
        outlier_mask = ub < k
        undecided = np.flatnonzero(~inlier_mask & ~outlier_mask)
        cache_outliers = np.flatnonzero(outlier_mask)
        cache_decided = self.n - int(undecided.size)
        cache_seconds = time.perf_counter() - t0

        # -- filter phase: Greedy-Counting over the residue -------------------
        # Runs the same shared chunk bodies as graph_dod (classify_chunk /
        # Verifier.verify_chunk), so the serving path cannot drift from
        # the reference path it must stay bit-identical to.
        t0 = time.perf_counter()

        def filter_worker(view: Dataset, chunk: np.ndarray, slot: int):
            if chunk.size and self.mode != "scalar" and self.max_visits is None:
                if self._block_trackers[slot] is None:
                    self._block_trackers[slot] = BlockTracker(
                        graph.n, self.batch_size
                    )
            return classify_chunk_arrays(
                view, graph, chunk, r, k,
                tracker=self._trackers[slot],
                follow_pivots=self.follow_pivots,
                max_visits=self.max_visits,
                mode=self.mode,
                batch_size=self.batch_size,
                block_tracker=self._block_trackers[slot],
            )

        filter_results, filter_pairs = self._pool.map(undecided, filter_worker)
        if filter_results:
            f_ids = np.concatenate([res[0] for res in filter_results])
            f_counts = np.concatenate([res[1] for res in filter_results])
            f_codes = np.concatenate([res[2] for res in filter_results])
            f_exact = np.concatenate([res[3] for res in filter_results])
        else:
            f_ids = f_counts = np.empty(0, dtype=np.int64)
            f_codes = np.empty(0, dtype=np.int8)
            f_exact = np.empty(0, dtype=bool)
        if f_ids.size:
            self.cache.record(r, f_ids, f_counts, exact_mask=f_exact)
        candidates = np.sort(f_ids[f_codes == CANDIDATE_CODE])
        direct = np.sort(f_ids[f_codes == OUTLIER_CODE])
        filter_seconds = time.perf_counter() - t0

        # -- verify phase: Exact-Counting over the candidates ------------------
        t0 = time.perf_counter()

        # Candidates that were already confirmed outliers at an earlier
        # radius are about to pay a full linear scan *again* (a true
        # outlier never terminates early).  Spend that scan on the
        # sorted distance vector instead: same cost now, O(log n) at
        # every later radius.
        memo_verified: list[int] = []
        memo_pairs = 0
        memo_filled = 0
        if self.memo_outliers and candidates.size and self._prior_outliers:
            fill = [
                int(p) for p in candidates.tolist()
                if p in self._prior_outliers and p not in self._memo
            ]
            fill = fill[: max(0, self._memo_budget - len(self._memo))]
            if fill:
                memo_filled = len(fill)
                pairs_before = self._memo_view.counter.pairs
                for p in fill:
                    if self._memoise(p, r) < k:
                        memo_verified.append(p)
                memo_pairs = self._memo_view.counter.pairs - pairs_before
                candidates = np.setdiff1d(
                    candidates, np.asarray(fill, dtype=np.int64)
                )

        def verify_worker(view: Dataset, chunk: np.ndarray, slot: int):
            return verifier.verify_chunk(chunk, r, k, dataset=view, mode=self.mode)

        verify_results, verify_pairs = self._pool.map(candidates, verify_worker)
        verify_pairs += memo_pairs
        verify_counts = [pce for chunk in verify_results for pce in chunk]
        if verify_counts:
            v_ids = np.asarray([p for p, _, _ in verify_counts], dtype=np.int64)
            v_cnt = np.asarray([c for _, c, _ in verify_counts], dtype=np.int64)
            v_exact = np.asarray([e for _, _, e in verify_counts], dtype=bool)
            self.cache.record(r, v_ids, v_cnt, exact_mask=v_exact)
        verified = [p for p, _, exact in verify_counts if exact]
        verified.extend(memo_verified)
        verify_seconds = time.perf_counter() - t0

        outliers = np.sort(
            np.concatenate(
                (cache_outliers, direct, np.asarray(verified, dtype=np.int64))
            )
        )
        self._prior_outliers.update(int(p) for p in outliers)
        self.stats["queries"] += 1
        self.stats["cache_decided"] += cache_decided
        self.stats["filtered"] += int(undecided.size)
        self.stats["verified"] += int(candidates.size) + memo_filled

        evidence = None
        if collect_evidence:
            lb_now = self.cache.lower_bounds(r)
            evidence = ObjectEvidence(
                r=r,
                lower_bounds=lb_now,
                exact_mask=self.cache.upper_bounds(r) == lb_now,
            )
        method = str(graph.meta.get("builder", "graph"))
        return DODResult(
            outliers=outliers,
            r=r,
            k=k,
            n=self.n,
            method=f"engine:{method}",
            seconds=cache_seconds + filter_seconds + verify_seconds,
            pairs=filter_pairs + verify_pairs,
            phases={
                "cache": cache_seconds,
                "filter": filter_seconds,
                "verify": verify_seconds,
            },
            phase_pairs={"cache": 0, "filter": filter_pairs, "verify": verify_pairs},
            counts={
                "candidates": int(candidates.size) + memo_filled,
                "direct_outliers": int(direct.size),
                "false_positives": int(candidates.size) + memo_filled
                - len(verified),
                "cache_decided": cache_decided,
                "cache_outliers": int(cache_outliers.size),
                "filtered": int(undecided.size),
            },
            evidence=evidence,
        )

    def batch(self, queries) -> list[DODResult]:
        """Answer ``(r, k)`` queries in the given order (serving semantics).

        Each query still reuses everything every earlier query proved.
        """
        return [self.query(float(r), int(k)) for r, k in queries]

    def sweep(
        self,
        r_grid,
        k_grid=None,
        k: "int | None" = None,
    ) -> SweepResult:
        """Answer the full ``r_grid x k_grid`` in a reuse-maximising order.

        ``k`` is shorthand for a single-point ``k_grid``.  Results are
        keyed by ``(r, k)`` regardless of processing order.
        """
        if k_grid is None:
            if k is None:
                raise ParameterError("sweep needs k_grid or k")
            k_grid = [k]
        queries = [
            (float(rv), int(kv)) for rv in np.asarray(r_grid, dtype=np.float64)
            for kv in k_grid
        ]
        if len(set(queries)) != len(queries):
            raise ParameterError("sweep grid contains duplicate (r, k) points")
        sweep = SweepResult(queries=queries)
        for rv, kv in _sweep_order(queries):
            sweep.results[(rv, kv)] = self.query(rv, kv)
        return sweep

    def top_n(self, n_top: int, k: int, rng: "int | None" = 0):
        """Exact top-``n_top`` ranking by k-th-NN distance.

        Delegates to :func:`repro.extensions.topn.top_n_outliers`,
        seeding ORCA's cutoff prune from this engine's evidence (stored
        exact-K'NN lists, memoised outliers, cached count bounds).
        """
        from ..extensions.topn import top_n_outliers

        return top_n_outliers(None, n_top, k, engine=self, rng=rng)

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Snapshot graph + evidence cache so a restart serves warm."""
        from ..io import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path, dataset: Dataset, **kwargs) -> "DetectionEngine":
        """Rebuild a saved engine against its (re-supplied) dataset."""
        from ..io import load_engine

        return load_engine(path, dataset, **kwargs)

    # -- protocol surface ------------------------------------------------------

    capabilities = EngineCapabilities(top_n=True)

    @property
    def graph_name(self) -> str:
        """Builder name of the fitted proximity graph."""
        return str(self.graph.meta.get("builder", "graph"))

    @property
    def graph_degree(self) -> int:
        """Degree parameter the graph was built with (0 if unrecorded)."""
        return int(self.graph.meta.get("K", 0))

    def describe(self) -> str:
        return (
            f"single-process engine, n={self.n}, "
            f"graph={self.graph_name}, n_jobs={self.n_jobs}"
        )

    @property
    def backend_name(self) -> str:
        """Registry name of the dataset's numeric backend."""
        return self.dataset.backend_name

    def backend_stats(self) -> dict:
        """Active backend name plus screen/rescreen pair counters."""
        return self.dataset.backend_stats()

    def store_stats(self) -> dict:
        """Where the dataset's object store lives and what it pins."""
        return self.dataset.store_stats()

    def build_stats(self) -> dict:
        """Per-phase construction observability of the fitted graph."""
        return self.graph.build_stats()

    # -- bookkeeping -----------------------------------------------------------

    @property
    def index_nbytes(self) -> int:
        """Memory of the serving state (graph + verifier + cache + memo)."""
        memo_nbytes = sum(vec.nbytes for vec in self._memo.values())
        return (
            self.graph.nbytes + self.verifier.nbytes + self.cache.nbytes
            + memo_nbytes
        )

    def reset_cache(self) -> None:
        """Drop all accumulated evidence (keeps graph and verifier).

        Memoised distance vectors survive (the dataset is immutable, so
        they stay true); their per-radius records are re-derived on the
        next query at each radius.
        """
        self.cache.clear()
        self._knn_radii.clear()
        self._memo_radii.clear()

    def close(self) -> None:
        """Shut down the shared worker pool."""
        self._pool.close()

    def __enter__(self) -> "DetectionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DetectionEngine(n={self.n}, graph="
            f"{self.graph.meta.get('builder', 'graph')!r}, "
            f"queries={self.stats['queries']}, n_jobs={self.n_jobs})"
        )
