"""Shard-per-worker serving: multi-process DOD with an exact merge.

The paper parallelises Algorithm 1 "simply by parallelizing the
per-object loop" (§6) — threads over one shared graph.  The batched
kernels release the GIL, so that scales to a few cores; past that the
interpreter serialises and a serving process needs *processes*.  This
module shards the dataset itself: each worker process owns a disjoint
slice of the objects plus a **shard-local sub-engine** (proximity graph
over the slice, its own :class:`~repro.engine.evidence.EvidenceCache`),
and a merge layer combines per-shard facts into exact global verdicts.

Exactness survives sharding because neighbor counts decompose over any
partition of the data: for shards ``P = P_1 ∪ ... ∪ P_S`` the global
count of object ``p`` at radius ``r`` is the *sum* of its within-shard
counts.  Three consequences drive the design:

* a shard-local Greedy-Counting walk lower-bounds ``p``'s within-shard
  count (Lemma 1 applies verbatim to the sub-graph), so the **sum of
  shard lower bounds is a global lower bound** — reaching ``k`` proves
  an inlier without any shard knowing the true count;
* a shard-local traversal can **never** prove an outlier on its own
  (the other shards may hold the missing neighbors), so the §5.5
  exact-K'NN shortcut's "definitive outlier" verdict is demoted to an
  exact *within-shard* count and only the all-shards sum decides;
* verification falls back to exact per-shard
  :func:`~repro.index.linear.linear_count_block` sweeps with per-shard
  early termination at ``k``: if the summed counts reach ``k`` the
  object is an inlier, and if they stay below ``k`` every per-shard
  scan ran to completion, so the sum is the true count and the object
  is an outlier.  Either way the verdict is certain.

Every shard cache stores *within-shard* bounds indexed by global object
id, so the engine's monotone-bound reuse works across the merge exactly
as in :class:`~repro.engine.DetectionEngine`: lower bounds transfer to
larger radii, exact counts cap smaller radii, and a repeated query is a
pure cache hit in every shard at once.

Answers are **bit-identical** to the single-process engine (both are
exactly the brute-force outlier set); CI gates on it via
``scripts/check_sharded_equivalence.py``.

Example
-------
>>> import numpy as np
>>> from repro import DetectionEngine, ShardedDetectionEngine
>>> points = np.random.default_rng(0).normal(size=(160, 4))
>>> sharded = ShardedDetectionEngine.fit(
...     points, metric="l2", graph="kgraph", K=6, n_shards=3, workers=1)
>>> single = DetectionEngine.fit(points, metric="l2", graph="kgraph", K=6)
>>> a = sharded.query(r=1.6, k=8)
>>> b = single.query(r=1.6, k=8)
>>> bool(np.array_equal(a.outliers, b.outliers))
True
>>> again = sharded.query(r=1.6, k=8)   # repeat: pure cache hit in every shard
>>> again.pairs
0
>>> sharded.close(); single.close()
"""

from __future__ import annotations

import os
import time
from functools import partial

import numpy as np

from ..core.counting import (
    VisitTracker,
    classify_chunk_arrays,
    resolve_filter_mode,
)
from ..core.parallel import DatasetTransport, ShardPool, default_start_method
from ..core.result import DODResult
from ..core.traversal import DEFAULT_BLOCK, BlockTracker, foreign_count_block
from ..backends import resolve_backend
from ..data import Dataset
from ..exceptions import GraphError, ParameterError
from ..graphs.adjacency import Graph
from ..graphs.base import build_graph
from ..index.linear import linear_count_block
from ..index.vptree import VPTree
from ..metrics import Metric
from ..rng import ensure_rng
from .engine import SweepResult, _sweep_order
from .evidence import NO_BOUND, EvidenceCache
from .protocol import EngineCapabilities

#: recognised dataset-partitioning strategies.
SHARD_STRATEGIES = ("contiguous", "permuted")

#: foreign candidates per descent kernel — bounds the BlockTracker's
#: ``block_size * shard_n`` stamp matrix while keeping waves batched.
DESCENT_BLOCK = 256


def plan_shards(
    n: int,
    n_shards: int,
    strategy: str = "permuted",
    rng: "int | np.random.Generator | None" = 0,
) -> list[np.ndarray]:
    """Partition ``0..n-1`` into ``n_shards`` disjoint, sorted id arrays.

    ``"contiguous"`` slices the id range in order (cheap, but clustered
    data then concentrates whole clusters — and their outlier-heavy
    tails — in single shards); ``"permuted"`` assigns ids by a seeded
    random permutation, the same load-balancing argument as the paper's
    random thread partitioning (§4).  Shard ids are returned sorted so
    membership tests and subset sweeps can use binary search.

    >>> [s.tolist() for s in plan_shards(7, 3, strategy="contiguous")]
    [[0, 1, 2], [3, 4], [5, 6]]
    >>> sorted(np.concatenate(plan_shards(7, 3, rng=1)).tolist())
    [0, 1, 2, 3, 4, 5, 6]
    """
    if n_shards < 1:
        raise ParameterError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > n:
        raise ParameterError(
            f"cannot split {n} objects into {n_shards} non-empty shards"
        )
    if strategy not in SHARD_STRATEGIES:
        raise ParameterError(
            f"unknown shard strategy {strategy!r}; known: {SHARD_STRATEGIES}"
        )
    if strategy == "contiguous":
        order = np.arange(n, dtype=np.int64)
    else:
        order = ensure_rng(rng).permutation(n).astype(np.int64)
    return [np.sort(chunk) for chunk in np.array_split(order, n_shards)]


class ShardWorker:
    """One shard's sub-engine; lives inside a :class:`ShardPool` actor.

    Holds the shard's slice ids, a sub-dataset over them, a proximity
    graph built on that sub-dataset, and an :class:`EvidenceCache` of
    **within-shard** count bounds indexed by *global* object id.  All
    public methods return ``(payload..., pairs)`` where ``pairs`` is
    the number of distance computations the call performed, so the
    parent can aggregate cost accounting across processes.
    """

    def __init__(
        self,
        dataset: "Dataset | DatasetTransport",
        ids: np.ndarray,
        graph: "str | Graph" = "mrpg",
        K: int = 16,
        seed: int = 0,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        graph_params: "dict | None" = None,
        cache: "EvidenceCache | None" = None,
        knn_radii: "tuple[float, ...]" = (),
        backend: "str | None" = None,
        foreign_index: bool = True,
    ):
        if isinstance(dataset, DatasetTransport):
            dataset = dataset.materialize()
        self.ids = np.asarray(ids, dtype=np.int64)
        if self.ids.size == 0:
            raise ParameterError("shard must hold at least one object")
        self.n = dataset.n
        self.m = int(self.ids.size)
        #: full-dataset view: cross-shard subset sweeps + own pair counter.
        self._full = dataset.view()
        if backend is not None:
            # Each worker instantiates its own backend (transport strips
            # it), so per-shard choices — one GPU per worker — need no
            # cross-process state beyond the name.
            self._full.set_backend(backend)
        #: shard sub-dataset (local ids 0..m-1): traversal + own counter.
        #: Shares the full view's backend instance so the worker's
        #: screen stats aggregate in one place.
        self.sub = self._full.subset(self.ids)
        if isinstance(graph, Graph):
            if graph.n != self.m:
                raise GraphError(
                    f"shard graph has {graph.n} vertices for a "
                    f"{self.m}-object shard"
                )
            if not graph.finalized:
                graph.finalize()
            self.graph = graph
        elif self.m == 1:
            # A single-object shard has no neighbors to link; traversal
            # degenerates to "count 0" and verification decides.
            self.graph = Graph(1).finalize()
            self.graph.meta["builder"] = "trivial"
        else:
            self.graph = build_graph(
                graph, self.sub, K=K, rng=seed, clamp_K=True,
                **(graph_params or {}),
            )
        #: per-shard Exact-Counting index (§4): a VP-tree over this
        #: shard's members on the *full-log* view, so phase C can count
        #: foreign candidates exactly with metric pruning instead of a
        #: linear subset sweep.  Phase-C survivors are by construction
        #: far from most data (true outliers dominate them), which is
        #: precisely where ball pruning collapses the scan.
        self._ftree: "VPTree | None" = None
        if foreign_index and self.m > 1:
            self._ftree = VPTree(
                self._full, capacity=16, rng=seed, indices=self.ids
            )
        self.sub.counter.reset()  # offline build cost is not query cost
        self._full.counter.reset()
        resolve_filter_mode(mode, None)
        self.mode = mode
        self.batch_size = int(batch_size)
        self.cache = cache if cache is not None else EvidenceCache(self.n)
        self._tracker = VisitTracker(self.m)
        self._block_tracker: "BlockTracker | None" = None
        self._descent_tracker: "BlockTracker | None" = None
        (
            self._knn_owners,
            self._knn_sizes,
            self._knn_ptr,
            self._knn_dists,
        ) = self.graph.exact_knn_arrays()
        self._knn_radii: set[float] = set(float(r) for r in knn_radii)
        self._pairs_seen = 0

    # -- cost accounting ---------------------------------------------------

    def _take_pairs(self) -> int:
        """Distance computations since the last call (sub + full views)."""
        total = self.sub.counter.pairs + self._full.counter.pairs
        delta = total - self._pairs_seen
        self._pairs_seen = total
        return delta

    # -- query phases ------------------------------------------------------

    def _ensure_knn_evidence(self, r: float) -> None:
        """Exact within-shard counts from the shard graph's K'NN lists."""
        if r in self._knn_radii or self._knn_owners.size == 0:
            return
        self._knn_radii.add(r)
        within = np.add.reduceat(
            (self._knn_dists <= r).astype(np.int64), self._knn_ptr[:-1]
        )
        self.cache.record(
            r,
            self.ids[self._knn_owners],
            within,
            exact_mask=within < self._knn_sizes,
        )

    def prepare(self, r: float):
        """Phase A: fold the cache; return full within-shard bound arrays."""
        r = float(r)
        self._ensure_knn_evidence(r)
        return self.cache.lower_bounds(r), self.cache.upper_bounds(r), self._take_pairs()

    def filter(self, r: float, k: int, home_ids: np.ndarray):
        """Phase B: shard-local Greedy-Counting over *home* objects.

        ``home_ids`` are global ids that belong to this shard.  Returns
        their within-shard counts (Lemma 1 lower bounds; exact where the
        §5.5 shortcut saw every within-shard neighbor) — never a global
        verdict, which only the merge can issue.
        """
        r, k = float(r), int(k)
        home_ids = np.asarray(home_ids, dtype=np.int64)
        if home_ids.size == 0:
            return home_ids, np.empty(0, np.int64), np.empty(0, bool), 0
        # Objects whose within-shard count is already cached — exactly,
        # or as a lower bound that alone clears k — need no re-walk.
        lb = self.cache.lower_bounds(r)[home_ids]
        ub = self.cache.upper_bounds(r)[home_ids]
        settled = ((ub != NO_BOUND) & (lb >= ub)) | (lb >= k)
        counts = lb.copy()
        exact = (ub != NO_BOUND) & (lb >= ub)
        walk = np.flatnonzero(~settled)
        if walk.size:
            local = np.searchsorted(self.ids, home_ids[walk])
            if self.mode != "scalar" and self._block_tracker is None:
                self._block_tracker = BlockTracker(self.m, self.batch_size)
            _, w_counts, _, w_exact = classify_chunk_arrays(
                self.sub, self.graph, local, r, k,
                tracker=self._tracker,
                mode=self.mode, batch_size=self.batch_size,
                block_tracker=self._block_tracker,
            )
            np.maximum(w_counts, counts[walk], out=w_counts)
            counts[walk] = w_counts
            exact[walk] = w_exact
            self.cache.record(r, home_ids[walk], w_counts, exact_mask=w_exact)
        return home_ids, counts, exact, self._take_pairs()

    def count_descent(self, r: float, ids: np.ndarray, need: np.ndarray):
        """Phase C v2: graph-speed within-shard lower bounds for foreign ids.

        Seeds a multi-source descent on this shard's graph from each
        foreign candidate (:func:`foreign_count_block`) and stops a
        candidate at its ``need`` residual — the count the global merge
        is still missing.  Counts are sound within-shard **lower
        bounds**: a candidate that reaches ``need`` retires from the
        sweep rounds entirely, a stalled one falls back to the exact
        subset sweeps unchanged, so verdicts stay bit-identical.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return np.zeros(0, dtype=np.int64), 0
        need = np.broadcast_to(np.asarray(need, dtype=np.int64), ids.shape)
        counts = np.zeros(ids.size, dtype=np.int64)
        block = min(ids.size, DESCENT_BLOCK)
        tracker = self._descent_tracker
        if tracker is None or tracker.n != self.m or tracker.block_size < block:
            tracker = self._descent_tracker = BlockTracker(self.m, block)
        for lo in range(0, ids.size, block):
            sl = slice(lo, lo + block)
            counts[sl] = foreign_count_block(
                self._full, self.graph, self.ids, ids[sl], r, need[sl],
                tracker=tracker,
            )
        return counts, self._take_pairs()

    def count_exact(self, r: float, ids: np.ndarray, need: np.ndarray):
        """Phase C v2 fallback: early-terminated *exact* within-shard counts.

        Counts each candidate against this shard's members through the
        per-shard VP-tree (the §4 Exact-Counting index, built offline
        over the shard's ids), stopping at the candidate's ``need``
        residual.  A returned count below ``need`` saw every member —
        it is the true within-shard count; a count at or above ``need``
        is a truncated lower bound that already retires the candidate
        at the merge.  Without a tree the call degrades to the exact
        linear subset sweep with the same per-candidate stops.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return (
                np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool), 0
            )
        need = np.broadcast_to(np.asarray(need, dtype=np.int64), ids.shape)
        if self._ftree is not None:
            counts = np.empty(ids.size, dtype=np.int64)
            for t in range(ids.size):
                counts[t] = self._ftree.count_within(
                    int(ids[t]), r, stop_at=int(need[t])
                )
        else:
            counts = linear_count_block(
                self._full, ids, r, stop_at=need, subset=self.ids
            )
        return counts, counts < need, self._take_pairs()

    def count_range(self, r: float, ids: np.ndarray, lo: int, hi: int):
        """Phase C: hits among shard positions ``[lo, hi)`` per candidate.

        One slice of the cooperative cross-shard sweep: the parent
        re-merges after every round and retires a candidate the moment
        the summed per-shard bounds reach ``k``, so the prefix a
        candidate pays for grows only until *some* combination of
        shards proves it an inlier — the cross-process analogue of
        :func:`~repro.index.linear.linear_count_block`'s early
        retirement.  A candidate that is itself a member of the scanned
        slice does not count itself.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        lo, hi = int(lo), min(int(hi), self.m)
        if ids.size == 0 or lo >= hi:
            return np.zeros(ids.size, dtype=np.int64), 0
        span = hi - lo
        idx = self.ids[lo:hi]
        d = self._full.pair_dist(
            np.repeat(ids, span), np.tile(idx, ids.size), bound=r,
            consistent=True,
        )
        add = (d <= r).reshape(ids.size, span).sum(axis=1).astype(np.int64)
        pos = np.searchsorted(self.ids, ids)
        pos_safe = np.minimum(pos, self.m - 1)
        own = (self.ids[pos_safe] == ids) & (pos_safe >= lo) & (pos_safe < hi)
        add[own] -= 1
        return add, self._take_pairs()

    def count_tail(self, r: float, ids: np.ndarray, lo: int):
        """Phase C stall fallback: exhaust shard positions ``[lo, m)``.

        An exact :func:`~repro.index.linear.linear_count_block` sweep
        over the remaining slice — the survivors at this point are
        mostly true outliers, which must see every object anyway.
        """
        r = float(r)
        ids = np.asarray(ids, dtype=np.int64)
        lo = int(lo)
        if ids.size == 0 or lo >= self.m:
            return np.zeros(ids.size, dtype=np.int64), 0
        counts = linear_count_block(self._full, ids, r, subset=self.ids[lo:])
        return counts, self._take_pairs()

    def record(self, r: float, ids: np.ndarray, counts: np.ndarray,
               exact_mask: np.ndarray):
        """Deposit merged phase-C evidence back into this shard's cache."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size:
            self.cache.record(
                float(r), ids, np.asarray(counts, dtype=np.int64),
                exact_mask=np.asarray(exact_mask, dtype=bool),
            )
        return 0

    # -- bookkeeping ---------------------------------------------------------

    def state(self) -> dict:
        """Everything a snapshot needs: graph, cache, served K'NN radii."""
        return {
            "graph": self.graph,
            "cache": self.cache,
            "knn_radii": sorted(self._knn_radii),
        }

    def nbytes(self) -> int:
        return int(self.graph.nbytes + self.cache.nbytes)

    def reset_cache(self) -> None:
        self.cache.clear()
        self._knn_radii.clear()

    def backend_stats(self) -> dict:
        """This worker's backend name + screen/rescreen counters."""
        return self._full.backend_stats()

    def build_stats(self) -> dict:
        """Construction observability of this shard's graph."""
        return self.graph.build_stats()


def _make_worker(dataset, ids, graph, K, seed, mode, batch_size,
                 graph_params, cache, knn_radii, backend=None,
                 foreign_index=True) -> ShardWorker:
    """Module-level factory so spawn-based pools can pickle it."""
    return ShardWorker(
        dataset, ids, graph=graph, K=K, seed=seed, mode=mode,
        batch_size=batch_size, graph_params=graph_params,
        cache=cache, knn_radii=knn_radii, backend=backend,
        foreign_index=foreign_index,
    )


class _ShardMergeBase:
    """The exact conservative merge, shared by every sharded engine.

    Subclasses supply the population hooks — :meth:`_live_ids` (which
    global ids a query decides over), :meth:`_home_shards` (id ->
    owning shard), :meth:`_scan_sizes` (per-shard scan lengths for the
    cooperative verification), :meth:`_budget_dataset` (kernel budget
    sizing) and :meth:`_method_label` — plus ``self._pool`` hosting
    workers that answer ``prepare``/``filter``/``count_range``/
    ``count_tail``/``record``.  The three-phase query protocol, the
    round-based cross-shard verification with stall handoff, and the
    evidence deposit are written once here: the static
    :class:`ShardedDetectionEngine` and the mutable
    :class:`~repro.engine.mutable_sharded.MutableShardedDetectionEngine`
    compose the same merge over different populations instead of
    duplicating it.
    """

    n_shards: int
    stats: dict

    @staticmethod
    def _fresh_merge_stats() -> dict:
        """Counters every sharded engine's ``stats`` dict starts with."""
        return {
            "queries": 0,
            "cache_decided": 0,
            "filtered": 0,
            "verified": 0,
            "descent_decided": 0,
            "phase_seconds": {"cache": 0.0, "filter": 0.0, "verify": 0.0},
            "phase_pairs": {
                "cache": 0,
                "filter": 0,
                "verify": 0,
                "verify_descent": 0,
                "verify_index": 0,
                "verify_sweep": 0,
            },
        }

    # -- population hooks (subclass responsibility) ------------------------

    def _live_ids(self) -> np.ndarray:
        """Global ids the query decides over (ascending)."""
        raise NotImplementedError

    def _home_shards(self, ids: np.ndarray) -> np.ndarray:
        """Owning shard per global id (for the filter phase)."""
        raise NotImplementedError

    def _scan_sizes(self) -> np.ndarray:
        """Per-shard scan length for cooperative verification."""
        raise NotImplementedError

    def _budget_dataset(self):
        """A dataset sized like the collection (kernel budget heuristic)."""
        raise NotImplementedError

    def _method_label(self) -> str:
        raise NotImplementedError

    # -- the online path ---------------------------------------------------

    def query(self, r: float, k: int) -> DODResult:
        """Exact global ``(r, k)`` outliers from the shard merge."""
        if r < 0:
            raise ParameterError(f"radius must be non-negative, got {r}")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        r, k = float(r), int(k)
        S = self.n_shards
        live = self._live_ids()
        n = int(live.size)
        if n == 0:
            raise ParameterError("query over an empty collection")
        pairs = {"cache": 0, "filter": 0, "verify": 0}

        # -- phase A: merge per-shard cached bounds --------------------------
        # Sum of within-shard lower bounds is a global lower bound; the
        # sum of exact within-shard counts (where *every* shard has one)
        # is the true global count.
        t0 = time.perf_counter()
        prep = self._pool.call("prepare", common=(r,))
        lbs = [p[0] for p in prep]
        ubs = [p[1] for p in prep]
        pairs["cache"] = sum(p[2] for p in prep)
        for s, p in enumerate(prep):
            self._shard_load[s] += p[2]
        lb_tot = np.sum(lbs, axis=0)
        span = lb_tot.size
        ub_known = np.ones(span, dtype=bool)
        ub_tot = np.zeros(span, dtype=np.int64)
        for ub in ubs:
            known = ub != NO_BOUND
            ub_known &= known
            ub_tot += np.where(known, ub, 0)
        inlier_mask = lb_tot >= k
        outlier_mask = ub_known & (ub_tot < k)
        undecided = live[~inlier_mask[live] & ~outlier_mask[live]]
        cache_outliers = live[outlier_mask[live]]
        cache_decided = n - int(undecided.size)
        cache_seconds = time.perf_counter() - t0

        # -- phase B: shard-local filtering of each shard's own residue -------
        t0 = time.perf_counter()
        home = self._home_shards(undecided)
        shard_args = [(r, k, undecided[home == s]) for s in range(S)]
        filtered = self._pool.call("filter", shard_args=shard_args)
        for s, (ids_s, counts_s, exact_s, pairs_s) in enumerate(filtered):
            pairs["filter"] += pairs_s
            self._shard_load[s] += pairs_s
            if ids_s.size == 0:
                continue
            np.maximum.at(lbs[s], ids_s, counts_s)
            if exact_s.any():
                np.minimum.at(ubs[s], ids_s[exact_s], counts_s[exact_s])
        # Re-merge the residue with the fresh home-shard evidence.
        lb_u = np.sum([lb[undecided] for lb in lbs], axis=0)
        ub_known_u = np.ones(undecided.size, dtype=bool)
        ub_u = np.zeros(undecided.size, dtype=np.int64)
        for ub in ubs:
            vals = ub[undecided]
            known = vals != NO_BOUND
            ub_known_u &= known
            ub_u += np.where(known, vals, 0)
        f_inlier = lb_u >= k
        f_outlier = ~f_inlier & ub_known_u & (ub_u < k)
        filter_outliers = undecided[f_outlier]
        candidates = undecided[~f_inlier & ~f_outlier]
        filter_seconds = time.perf_counter() - t0

        # -- phase C: cooperative cross-shard verification of the candidates --
        # All shards sweep one slice of their data per round and the
        # merge re-decides in between: a candidate retires the moment
        # the summed per-shard bounds reach k, so the prefix it pays
        # for is the cross-shard analogue of a single early-terminated
        # scan.  A candidate that survives every round has, by
        # construction, been scanned against every shard completely —
        # its sum is the true global count and below k: an outlier.
        # When retirement stalls (the survivors are mostly true
        # outliers, which must see everything), the rounds hand off to
        # exhaustive per-shard linear_count_block subset sweeps.
        t0 = time.perf_counter()
        vdetail = {
            "descent_pairs": 0, "index_pairs": 0, "sweep_pairs": 0,
            "descent_decided": 0,
        }
        if candidates.size:
            verified, vdetail = self._verify_candidates(
                r, k, candidates, lbs, ubs
            )
            pairs["verify"] = (
                vdetail["descent_pairs"]
                + vdetail["index_pairs"]
                + vdetail["sweep_pairs"]
            )
        else:
            verified = np.empty(0, dtype=np.int64)
        verify_seconds = time.perf_counter() - t0

        outliers = np.sort(
            np.concatenate((cache_outliers, filter_outliers, verified))
        )
        self.stats["queries"] += 1
        self.stats["cache_decided"] += cache_decided
        self.stats["filtered"] += int(undecided.size)
        self.stats["verified"] += int(candidates.size)
        self.stats["descent_decided"] += vdetail["descent_decided"]
        phase_seconds = {
            "cache": cache_seconds,
            "filter": filter_seconds,
            "verify": verify_seconds,
        }
        phase_pairs = dict(pairs)
        phase_pairs["verify_descent"] = vdetail["descent_pairs"]
        phase_pairs["verify_index"] = vdetail["index_pairs"]
        phase_pairs["verify_sweep"] = vdetail["sweep_pairs"]
        for key, sec in phase_seconds.items():
            self.stats["phase_seconds"][key] += sec
        for key, cnt in phase_pairs.items():
            self.stats["phase_pairs"][key] += cnt
        return DODResult(
            outliers=outliers,
            r=r,
            k=k,
            n=n,
            method=self._method_label(),
            seconds=cache_seconds + filter_seconds + verify_seconds,
            pairs=sum(pairs.values()),
            phases=phase_seconds,
            phase_pairs=phase_pairs,
            counts={
                "candidates": int(candidates.size),
                "direct_outliers": int(filter_outliers.size),
                "false_positives": int(candidates.size) - int(verified.size),
                "cache_decided": cache_decided,
                "cache_outliers": int(cache_outliers.size),
                "filtered": int(undecided.size),
                "descent_decided": vdetail["descent_decided"],
            },
        )

    def _verify_candidates(self, r, k, candidates, lbs, ubs):
        """Cooperative cross-shard verification: ``(outlier ids, detail)``.

        Maintains per-shard prefix hit counts for every candidate and
        re-merges after each scan round; evidence (partial-prefix lower
        bounds, exact counts for fully-swept shards, foreign-descent
        lower bounds) is deposited back into the shard caches at the
        end so warm re-queries decide from phase A alone.  ``detail``
        splits the cost into ``descent_pairs`` / ``sweep_pairs`` and
        reports ``descent_decided`` — candidates the graph phase
        retired before any linear sweep round ran.
        """
        from ..index.linear import _pairs_per_kernel

        S, C = self.n_shards, candidates.size
        sizes = self._scan_sizes()
        cached_lb = np.stack([lb[candidates] for lb in lbs])
        cached_ub = np.stack([ub[candidates] for ub in ubs])
        exact_known = (cached_ub != NO_BOUND) & (cached_lb >= cached_ub)
        # Per-shard running bound: the true count where exact, else the
        # best lower bound (cached, later max'ed with scanned prefixes).
        bound = np.where(exact_known, cached_ub, cached_lb)
        prefix = np.zeros((S, C), dtype=np.int64)
        covered = np.zeros((S, C), dtype=np.int64)  # scanned prefix length
        offset = np.zeros(S, dtype=np.int64)
        budget = _pairs_per_kernel(self._budget_dataset())
        pairs = 0
        active = np.arange(C, dtype=np.int64)
        outliers: list[int] = []
        empty = np.empty(0, dtype=np.int64)

        # -- phase C v2: graph-assisted foreign counting ---------------------
        # Before any linear round, each foreign shard runs a seeded
        # descent on its own graph (``count_descent``) and stops a
        # candidate at the residual its merge still needs.  The counts
        # are Lemma-1 lower bounds, so max-merging them into ``bound``
        # and retiring at ``sum >= k`` is exactly the phase-A inlier
        # rule — candidates the descent cannot finish fall through to
        # the sweep rounds untouched, keeping verdicts bit-identical.
        descent_pairs = 0
        descent_decided = 0
        descended = np.zeros((S, C), dtype=bool)
        if getattr(self, "foreign_descent", True):
            home = self._home_shards(candidates)
            tot0 = bound.sum(axis=0)
            shard_args: list[tuple] = []
            mask: list[bool] = []
            sel_sets: list[np.ndarray] = []
            # A graph walk can realistically close only a *small*
            # residual: a candidate still missing most of k is almost
            # always a true outlier, whose count the descent cannot
            # reach (there is nothing to find) — every pair spent on it
            # is wasted.  Descend only where the merge is already more
            # than halfway there; the rest go straight to exact
            # counting.
            cap = max(1, k // 2)
            for s in range(S):
                # Home shards were walked in phase B (the candidate is a
                # vertex there); empty shards contribute exact zeros.
                sel = (
                    np.flatnonzero(~exact_known[s] & (home != s))
                    if sizes[s] > 0
                    else empty
                )
                need = np.maximum(1, k - (tot0[sel] - bound[s, sel]))
                keep = need <= cap
                sel, need = sel[keep], need[keep]
                sel_sets.append(sel)
                if sel.size == 0:
                    mask.append(False)
                    shard_args.append((r, empty, empty))
                    continue
                mask.append(True)
                shard_args.append((r, candidates[sel], need))
            results = self._pool.call_where("count_descent", shard_args, mask)
            for s in range(S):
                if results[s] is None:
                    continue
                counts_s, shard_pairs = results[s]
                descent_pairs += shard_pairs
                self._shard_load[s] += shard_pairs
                sel = sel_sets[s]
                bound[s, sel] = np.maximum(bound[s, sel], counts_s)
                descended[s, sel] = True
            settled = bound[:, active].sum(axis=0) >= k
            descent_decided = int(np.count_nonzero(settled))
            active = active[~settled]

        # -- phase C v2: per-shard exact-counting index -----------------------
        # Survivors here are dominated by true outliers, whose exact
        # within-shard counts are mandatory (an outlier verdict needs
        # every shard's true count).  Each shard answers through its
        # VP-tree (``count_exact``) with the candidate's residual as
        # the stop: a truncated count retires an inlier exactly like a
        # truncated sweep, a complete one is the true within-shard
        # count — ball pruning makes both far cheaper than a linear
        # sweep precisely because these candidates sit far from the
        # data.  Any candidate the stage leaves undecided (never, with
        # every shard answering) falls through to the sweep rounds.
        index_pairs = 0
        treed = np.zeros((S, C), dtype=bool)
        if active.size and getattr(self, "_foreign_index", False):
            tot0 = bound.sum(axis=0)
            shard_args = []
            mask = []
            sel_sets = []
            for s in range(S):
                sel = (
                    active[~exact_known[s, active]] if sizes[s] > 0 else empty
                )
                sel_sets.append(sel)
                if sel.size == 0:
                    mask.append(False)
                    shard_args.append((r, empty, empty))
                    continue
                need = np.maximum(1, k - (tot0[sel] - bound[s, sel]))
                mask.append(True)
                shard_args.append((r, candidates[sel], need))
            results = self._pool.call_where("count_exact", shard_args, mask)
            for s in range(S):
                if results[s] is None:
                    continue
                counts_s, exact_s, shard_pairs = results[s]
                index_pairs += shard_pairs
                self._shard_load[s] += shard_pairs
                sel = sel_sets[s]
                bound[s, sel] = np.maximum(bound[s, sel], counts_s)
                exact_known[s, sel] |= exact_s
                treed[s, sel] = True
                # A complete count doubles as an exact deposit: mark the
                # shard fully covered so the record phase flags it.
                covered[s, sel[exact_s]] = sizes[s]
            tot = bound[:, active].sum(axis=0)
            complete = np.all(
                exact_known[:, active] | (sizes == 0)[:, None], axis=0
            )
            is_inlier = tot >= k
            is_outlier = ~is_inlier & complete
            outliers.extend(int(p) for p in candidates[active[is_outlier]])
            active = active[~is_inlier & ~is_outlier]

        while active.size:
            # One round costs ~budget pairs across ALL shards together,
            # mirroring the single engine's sweep economics: a candidate
            # sees S * span objects per round, so its retirement prefix
            # tracks what one early-terminated global scan would pay.
            span = max(64, budget // (S * int(active.size)))
            scan_sets: list[np.ndarray] = []
            shard_args = []
            for s in range(S):
                if offset[s] >= sizes[s]:
                    scan_sets.append(empty)
                    shard_args.append((r, empty, 0, 0))
                    continue
                sel = active[~exact_known[s, active]]
                scan_sets.append(sel)
                shard_args.append(
                    (r, candidates[sel], int(offset[s]), int(offset[s] + span))
                )
            results = self._pool.call("count_range", shard_args=shard_args)
            for s in range(S):
                add, shard_pairs = results[s]
                pairs += shard_pairs
                self._shard_load[s] += shard_pairs
                sel = scan_sets[s]
                if sel.size == 0:
                    continue
                hi = min(int(offset[s] + span), int(sizes[s]))
                prefix[s, sel] += add
                bound[s, sel] = np.maximum(bound[s, sel], prefix[s, sel])
                covered[s, sel] = hi
            offset = np.where(offset < sizes, np.minimum(offset + span, sizes), offset)

            tot = bound[:, active].sum(axis=0)
            full = (offset >= sizes)[:, None]
            complete = np.all(exact_known[:, active] | full, axis=0)
            is_inlier = tot >= k
            is_outlier = ~is_inlier & complete
            outliers.extend(int(p) for p in candidates[active[is_outlier]])
            survivors = active[~is_inlier & ~is_outlier]
            # Stall handoff: when a round barely retires anyone, the
            # survivors are (mostly) true outliers — finish them with
            # one exhaustive subset sweep per shard instead of rounds.
            if survivors.size and survivors.size > 0.75 * active.size:
                shard_args = []
                tail_sets = []
                for s in range(S):
                    sel = survivors[~exact_known[s, survivors]]
                    tail_sets.append(sel)
                    shard_args.append((r, candidates[sel], int(offset[s])))
                results = self._pool.call("count_tail", shard_args=shard_args)
                for s in range(S):
                    add, shard_pairs = results[s]
                    pairs += shard_pairs
                    self._shard_load[s] += shard_pairs
                    sel = tail_sets[s]
                    if sel.size:
                        prefix[s, sel] += add
                        bound[s, sel] = np.maximum(bound[s, sel], prefix[s, sel])
                        covered[s, sel] = sizes[s]
                tot = bound[:, survivors].sum(axis=0)
                outliers.extend(int(p) for p in candidates[survivors[tot < k]])
                active = empty
            else:
                active = survivors

        # Deposit what the phase proved back into the shard caches: a
        # scanned prefix or a descent count is a valid lower bound at r,
        # and a fully-swept shard's count is exact (doubles as an upper
        # bound) — so a descent-decided candidate re-decides from phase
        # A alone on the next query.
        shard_args = []
        for s in range(S):
            touched = np.flatnonzero(
                (covered[s] > 0) | descended[s] | treed[s]
            )
            shard_args.append((
                r,
                candidates[touched],
                bound[s, touched],
                covered[s, touched] >= sizes[s],
            ))
        self._pool.call("record", shard_args=shard_args)
        detail = {
            "descent_pairs": int(descent_pairs),
            "index_pairs": int(index_pairs),
            "sweep_pairs": int(pairs),
            "descent_decided": descent_decided,
        }
        return np.asarray(sorted(outliers), dtype=np.int64), detail

    def batch(self, queries) -> list[DODResult]:
        """Answer ``(r, k)`` queries in the given order (serving semantics)."""
        return [self.query(float(r), int(k)) for r, k in queries]

    def sweep(self, r_grid, k_grid=None, k: "int | None" = None) -> SweepResult:
        """Answer the full ``r_grid x k_grid`` in a reuse-maximising order."""
        if k_grid is None:
            if k is None:
                raise ParameterError("sweep needs k_grid or k")
            k_grid = [k]
        queries = [
            (float(rv), int(kv))
            for rv in np.asarray(r_grid, dtype=np.float64)
            for kv in k_grid
        ]
        if len(set(queries)) != len(queries):
            raise ParameterError("sweep grid contains duplicate (r, k) points")
        sweep = SweepResult(queries=queries)
        for rv, kv in _sweep_order(queries):
            sweep.results[(rv, kv)] = self.query(rv, kv)
        return sweep

    def shard_load(self) -> np.ndarray:
        """Mean-normalised load factor per shard (1.0 == even load).

        Averages two serve-time signals the merge already collects:
        the per-shard verification/filter pair counts
        (``_shard_load``, reset at every pool epoch) and the pool's
        cumulative per-shard busy-seconds.  Each signal is normalised
        to mean 1 before averaging so pairs and seconds weigh equally;
        with no recorded work the load is uniformly 1.  The mutable
        engine's ``rebalance(load_above=...)`` splits the argmax shard
        when its factor exceeds the threshold even though sizes are
        balanced.
        """
        n = self.n_shards
        signals = []
        pairs = np.asarray(
            getattr(self, "_shard_load", np.zeros(n)), dtype=np.float64
        )
        if pairs.size == n and pairs.sum() > 0:
            signals.append(pairs * (n / pairs.sum()))
        pool = getattr(self, "_pool", None)
        if pool is not None:
            busy = np.asarray(pool.busy_seconds(), dtype=np.float64)
            if busy.size == n and busy.sum() > 0:
                signals.append(busy * (n / busy.sum()))
        if not signals:
            return np.ones(n, dtype=np.float64)
        return np.mean(signals, axis=0)

    def barrier(self) -> int:
        """Drain in-flight shard work; returns the new pool epoch.

        The serving-tier hook behind the ``epoch_barrier`` capability:
        after a mutation broadcast, a ``barrier()`` guarantees every
        shard worker has fully applied its local repairs before the
        next coalesced read broadcast is released.
        """
        pool = getattr(self, "_pool", None)
        # The mutable sharded engine starts pool-less until its first
        # insert spawns the shards; an empty engine is trivially drained.
        return 0 if pool is None else pool.barrier()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:  # pragma: no cover - subclass responsibility
        raise NotImplementedError


class ShardedDetectionEngine(_ShardMergeBase):
    """Exact multi-process DOD serving: ``S`` shard sub-engines + merge.

    The scale-out sibling of :class:`~repro.engine.DetectionEngine`:
    the dataset is partitioned into ``n_shards`` slices, each owned by
    a :class:`ShardWorker` (shard-local graph + evidence cache) hosted
    on a :class:`~repro.core.parallel.ShardPool` of ``workers``
    processes.  Queries run in three broadcast phases — cache merge,
    shard-local filtering, cross-shard verification — and every answer
    is bit-identical to the single-process engine's.

    ``workers=1`` keeps the shard sub-engines in-process (identical
    results, no IPC): the debugging backend and the equivalence-gate
    reference.  ``workers`` defaults to ``min(n_shards, cpu_count)``.
    """

    def __init__(
        self,
        dataset: Dataset,
        n_shards: int = 4,
        workers: "int | None" = None,
        strategy: str = "permuted",
        graph: str = "mrpg",
        K: int = 16,
        rng: "int | np.random.Generator | None" = 0,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        start_method: "str | None" = None,
        shard_ids: "list[np.ndarray] | None" = None,
        shard_state: "list[dict] | None" = None,
        backend: "str | Sequence[str] | None" = None,
        foreign_descent: bool = True,
        foreign_index: "bool | None" = None,
        build_workers: "int | None" = None,
        **graph_params,
    ):
        gen = ensure_rng(rng)
        # Per-shard graph builds ride the worker-count-invariant pool
        # path when requested.  Inside daemonic shard processes the pool
        # runs in-process (daemons may not have children) — bit-identical
        # by invariance, so the knob is safe at any (workers, shards).
        self.build_workers = None if build_workers is None else int(build_workers)
        if self.build_workers is not None:
            graph_params.setdefault("build_workers", self.build_workers)
        if shard_ids is None:
            shard_ids = plan_shards(dataset.n, n_shards, strategy=strategy, rng=gen)
        else:
            shard_ids = [np.asarray(s, dtype=np.int64) for s in shard_ids]
            _validate_partition(shard_ids, dataset.n)
        self.dataset = dataset
        self.shard_ids = shard_ids
        self.n_shards = len(shard_ids)
        self.strategy = strategy
        self.graph_name = graph
        self.K = int(K)
        resolve_filter_mode(mode, None)
        self.mode = mode
        self.batch_size = int(batch_size)
        if workers is None:
            workers = min(self.n_shards, os.cpu_count() or 1)
        self.workers = max(1, min(int(workers), self.n_shards))
        self._start_method = start_method or default_start_method()
        # One backend name per shard: a scalar applies everywhere, a
        # sequence picks per shard (the seam for one-GPU-per-worker).
        # Resolve each distinct name here so unknown backends and
        # missing optional dependencies fail in the parent process.
        if backend is None or isinstance(backend, str):
            backend_names: "list[str | None]" = [backend] * self.n_shards
        else:
            backend_names = [None if b is None else str(b) for b in backend]
            if len(backend_names) != self.n_shards:
                raise ParameterError(
                    f"backend list has {len(backend_names)} entries for "
                    f"{self.n_shards} shards"
                )
        for name in {b for b in backend_names if b is not None}:
            resolve_backend(name)
        self.backend_names = backend_names

        #: global id -> owning shard, for routing the filter phase.
        self._shard_of = np.empty(dataset.n, dtype=np.int64)
        for s, ids in enumerate(shard_ids):
            self._shard_of[ids] = s

        self.foreign_descent = bool(foreign_descent)
        #: phase C v2 exact-counting index: per-shard VP-trees, built at
        #: fit time.  Defaults to following ``foreign_descent`` so the
        #: single toggle selects the whole v2 path vs the linear-sweep
        #: baseline; pass it explicitly to mix stages.
        self._foreign_index = (
            self.foreign_descent if foreign_index is None else bool(foreign_index)
        )

        seeds = [int(v) for v in gen.integers(0, 2**63 - 1, size=self.n_shards)]
        self._transport: "DatasetTransport | None" = None
        payload: "Dataset | DatasetTransport" = dataset
        if self.workers > 1 and self._start_method != "fork":
            payload = self._transport = DatasetTransport(dataset)
        factories = []
        for s in range(self.n_shards):
            state = shard_state[s] if shard_state is not None else {}
            factories.append(partial(
                _make_worker, payload, shard_ids[s],
                state.get("graph", graph), self.K, seeds[s], mode,
                self.batch_size, dict(graph_params),
                state.get("cache"), tuple(state.get("knn_radii", ())),
                backend_names[s], self._foreign_index,
            ))
        try:
            self._pool = ShardPool(
                factories, workers=self.workers, start_method=self._start_method
            )
        except BaseException:
            # A failed worker/graph build must not leak the spawn-mode
            # shared-memory segment: nobody else can release it.
            if self._transport is not None:
                self._transport.release()
                self._transport = None
            raise
        self.stats: dict = self._fresh_merge_stats()
        #: per-shard verify-pairs accumulator — the second load signal
        #: (besides pool busy-seconds) stats-driven rebalancing reads.
        self._shard_load = np.zeros(self.n_shards, dtype=np.int64)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def fit(
        cls,
        objects,
        metric: "str | Metric" = "l2",
        graph: str = "mrpg",
        K: int = 16,
        n_shards: int = 4,
        workers: "int | None" = None,
        strategy: str = "permuted",
        seed: "int | None" = 0,
        mode: str = "auto",
        batch_size: int = DEFAULT_BLOCK,
        start_method: "str | None" = None,
        backend: "str | Sequence[str] | None" = None,
        foreign_descent: bool = True,
        foreign_index: "bool | None" = None,
        **graph_params,
    ) -> "ShardedDetectionEngine":
        """Offline phase in one call: dataset + per-shard graphs + engine.

        With ``workers > 1`` the per-shard graph builds themselves run
        in parallel across the worker processes.
        """
        dataset = Dataset(objects, metric)
        return cls(
            dataset, n_shards=n_shards, workers=workers, strategy=strategy,
            graph=graph, K=K, rng=seed, mode=mode, batch_size=batch_size,
            start_method=start_method, backend=backend,
            foreign_descent=foreign_descent, foreign_index=foreign_index,
            **graph_params,
        )

    @property
    def n(self) -> int:
        return self.dataset.n

    @property
    def backend_name(self) -> str:
        """The numeric backend(s) in use, ``+``-joined when mixed."""
        return "+".join(sorted({b or "numpy64" for b in self.backend_names}))

    def backend_stats(self) -> dict:
        """Screen/rescreen counters summed across shard workers."""
        per_shard = self._pool.call("backend_stats")
        out: dict = {
            "backend": self.backend_name,
            "screen_calls": 0,
            "screened_pairs": 0,
            "rescreened_pairs": 0,
        }
        for entry in per_shard:
            for key in ("screen_calls", "screened_pairs", "rescreened_pairs"):
                out[key] += int(entry.get(key, 0))
        out["per_shard"] = list(per_shard)
        return out

    def store_stats(self) -> dict:
        """The fitted dataset's store accounting (see ``Dataset.store_stats``).

        Vector data reaches worker processes through the shared-memory
        transport, so the parent's store is the only full-precision
        copy; string stores are pickled per worker.
        """
        return self.dataset.store_stats()

    def build_stats(self) -> dict:
        """Per-shard graph-construction observability, plus totals."""
        per_shard = self._pool.call("build_stats")
        return {
            "build_workers": self.build_workers,
            "build_seconds": float(
                sum(s.get("build_seconds", 0.0) or 0.0 for s in per_shard)
            ),
            "per_shard": list(per_shard),
        }

    # -- merge hooks (the static population) -----------------------------------

    def _live_ids(self) -> np.ndarray:
        return np.arange(self.n, dtype=np.int64)

    def _home_shards(self, ids: np.ndarray) -> np.ndarray:
        return self._shard_of[ids]

    def _scan_sizes(self) -> np.ndarray:
        return np.asarray([ids.size for ids in self.shard_ids], dtype=np.int64)

    def _budget_dataset(self):
        return self.dataset

    def _method_label(self) -> str:
        return f"sharded[{self.n_shards}x{self.workers}]:{self.graph_name}"

    # -- persistence -----------------------------------------------------------

    def shard_states(self) -> list[dict]:
        """Per-shard ``{graph, cache, knn_radii}`` fetched from the workers."""
        return self._pool.call("state")

    def save(self, path) -> None:
        """Snapshot every shard (graphs + caches) under directory ``path``."""
        from ..io import save_sharded_engine

        save_sharded_engine(self, path)

    @classmethod
    def load(cls, path, dataset: Dataset, **kwargs) -> "ShardedDetectionEngine":
        """Rebuild a saved sharded engine against its (re-supplied) dataset."""
        from ..io import load_sharded_engine

        return load_sharded_engine(path, dataset, **kwargs)

    # -- bookkeeping -----------------------------------------------------------

    @property
    def index_nbytes(self) -> int:
        """Memory of the serving state summed over shards (graphs + caches)."""
        return int(sum(self._pool.call("nbytes")))

    def reset_cache(self) -> None:
        """Drop all accumulated evidence in every shard."""
        self._pool.call("reset_cache")

    # -- protocol surface ------------------------------------------------------

    capabilities = EngineCapabilities(sharded=True, epoch_barrier=True)

    @property
    def graph_degree(self) -> int:
        return self.K

    def describe(self) -> str:
        return (
            f"static sharded engine, n={self.n}, {self.n_shards} shards "
            f"on {self.workers} worker process(es)"
        )

    def close(self) -> None:
        """Shut down the worker processes and release shared memory."""
        self._pool.close()
        if self._transport is not None:
            self._transport.release()
            self._transport = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedDetectionEngine(n={self.n}, shards={self.n_shards}, "
            f"workers={self.workers}, graph={self.graph_name!r}, "
            f"queries={self.stats['queries']})"
        )


def _validate_partition(shard_ids: list[np.ndarray], n: int) -> None:
    """Shard id lists must partition ``0..n-1`` exactly."""
    if not shard_ids:
        raise ParameterError("need at least one shard")
    if any(ids.size == 0 for ids in shard_ids):
        raise ParameterError("every shard must hold at least one object")
    merged = np.concatenate(shard_ids)
    if merged.size != n or not np.array_equal(np.sort(merged), np.arange(n)):
        raise ParameterError(
            f"shard ids do not partition 0..{n - 1}: {merged.size} ids, "
            f"{np.unique(merged).size} distinct"
        )
