"""One engine protocol: the serving surface every engine variant shares.

The engine family grew one axis at a time — cross-query reuse
(:class:`~repro.engine.engine.DetectionEngine`), mutation repair
(:class:`~repro.engine.mutable.MutableDetectionEngine`), multi-process
sharding (:class:`~repro.engine.sharded.ShardedDetectionEngine`), and
their composition
(:class:`~repro.engine.mutable_sharded.MutableShardedDetectionEngine`).
All four answer the same exact ``(r, k)`` queries; what differs is
*which capabilities* each carries.  This module names that shared
surface once:

* :class:`EngineCore` — the query/serving contract every engine
  implements (``query``/``batch``/``sweep``, snapshotting, cache
  control, lifecycle);
* :class:`MutableEngineCore` — the extension mutable engines add
  (``insert``/``remove``/``vacuum``/``pin`` over a stable external id
  space);
* :class:`EngineCapabilities` — static capability flags callers branch
  on *instead of* ``isinstance`` ladders;
* :func:`create_engine` — the one place a caller's workload shape
  (``shards``/``mutable``) is turned into a concrete engine class.

``cli.py`` and ``io.py`` dispatch exclusively through these; nothing
above the engine layer names a concrete engine class to pick between
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.result import DODResult
from ..core.traversal import DEFAULT_BLOCK
from ..exceptions import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import SweepResult


@dataclass(frozen=True)
class EngineCapabilities:
    """What one engine variant can do, as static flags.

    ``mutable``
        ``insert``/``remove``/``vacuum`` mutate the collection; ids are
        stable external ids over an append-only log.
    ``sharded``
        The dataset is partitioned over shard workers (queries are
        merge broadcasts; ``workers`` may be real processes).
    ``snapshot``
        ``save``/``load`` round-trips the serving state.
    ``top_n``
        ``top_n(n_top, k)`` exact ranking is available.
    ``pinned_radii``
        Evidence at pinned radii is maintained exactly through
        mutations (the streaming substrate).
    ``coalescable``
        Concurrent ``(r, k)`` requests may be merged into one
        :meth:`EngineCore.batch` call without changing any answer
        (reads are side-effect-free apart from evidence accumulation,
        which only ever tightens proven bounds).  The async serving
        tier (:mod:`repro.serving`) keys its batching on this.
    ``epoch_barrier``
        The engine exposes a :meth:`barrier` method that drains all
        in-flight shard work (the PR-5 epoch barrier on
        :class:`~repro.core.parallel.ShardPool`); the serving tier
        calls it between a mutation batch and the reads queued behind
        it so shard-local repairs are fully applied before the next
        coalesced broadcast.
    ``zero_copy_store``
        Object data lives in one growable shared segment
        (:class:`~repro.core.store.SharedObjectStore`) that every shard
        worker maps zero-copy; mutation broadcasts carry metadata only
        and deletes are reclaimed by a compaction epoch behind the
        barrier.
    """

    mutable: bool = False
    sharded: bool = False
    snapshot: bool = True
    top_n: bool = False
    pinned_radii: bool = False
    coalescable: bool = True
    epoch_barrier: bool = False
    zero_copy_store: bool = False


@runtime_checkable
class EngineCore(Protocol):
    """The serving contract shared by every detection engine.

    Every implementation answers **exact** queries — bit-identical to a
    fresh scalar ``graph_dod`` run (and to brute force) over the same
    live objects — and accumulates evidence across queries.
    """

    capabilities: EngineCapabilities

    def query(self, r: float, k: int) -> DODResult:
        """Exact ``(r, k)`` outliers over the (live) collection."""
        ...

    def batch(self, queries) -> "list[DODResult]":
        """Answer ``(r, k)`` queries in the given order."""
        ...

    def sweep(self, r_grid, k_grid=None, k: "int | None" = None) -> "SweepResult":
        """Answer an ``r_grid x k_grid`` in a reuse-maximising order."""
        ...

    def reset_cache(self) -> None:
        """Drop accumulated evidence (keeps the fitted index)."""
        ...

    def save(self, path) -> None:
        """Snapshot the serving state (see :func:`repro.io.load_any_engine`)."""
        ...

    def close(self) -> None:
        """Release pools, processes and shared memory."""
        ...

    def describe(self) -> str:
        """One-line human description of the engine topology."""
        ...

    @property
    def graph_name(self) -> str:
        """Builder name of the underlying proximity graph(s)."""
        ...

    @property
    def graph_degree(self) -> int:
        """Degree parameter ``K`` of the underlying graph(s)."""
        ...

    @property
    def index_nbytes(self) -> int:
        """Memory held by the serving state (graphs + caches)."""
        ...

    @property
    def backend_name(self) -> str:
        """Numeric backend(s) answering queries (``numpy64`` default)."""
        ...

    def backend_stats(self) -> dict:
        """Screen/rescreen pair counters of the numeric backend(s)."""
        ...

    def store_stats(self) -> dict:
        """Object-store accounting: ``kind``, ``nbytes``, and the
        resident footprint (``resident_nbytes``) the store pins."""
        ...


@runtime_checkable
class MutableEngineCore(EngineCore, Protocol):
    """The mutation extension: engines whose collection can change.

    External ids are *stable*: ``insert`` appends to an id log,
    ``remove`` tombstones, and every answer reports stable ids until
    :meth:`vacuum` explicitly renumbers.
    """

    def insert(self, objects: Sequence) -> np.ndarray:
        """Append objects; returns their stable ids."""
        ...

    def remove(self, ids: Sequence[int], known_neighbors=None) -> None:
        """Tombstone objects (evidence repaired, not dropped)."""
        ...

    def vacuum(self) -> np.ndarray:
        """Drop tombstoned storage; returns the id remap."""
        ...

    def pin(self, *radii: float) -> None:
        """Maintain exact evidence at these radii through mutations."""
        ...

    @property
    def n_active(self) -> int:
        """Number of live objects."""
        ...

    def active_ids(self) -> np.ndarray:
        """Stable external ids of the live objects."""
        ...


def supports(engine, capability: str) -> bool:
    """``True`` when ``engine`` declares the named capability flag."""
    caps = getattr(engine, "capabilities", None)
    if caps is None:
        return False
    try:
        return bool(getattr(caps, capability))
    except AttributeError:
        raise ParameterError(
            f"unknown engine capability {capability!r}; known: "
            f"{sorted(EngineCapabilities().__dict__)}"
        ) from None


def create_engine(
    data=None,
    *,
    metric="l2",
    graph: str = "mrpg",
    K: int = 16,
    seed: "int | None" = 0,
    shards: int = 1,
    workers: "int | None" = None,
    mutable: bool = False,
    n_jobs: int = 1,
    mode: str = "auto",
    batch_size: int = DEFAULT_BLOCK,
    strategy: str = "permuted",
    pinned: Sequence[float] = (),
    cache_radii: "int | None" = None,
    rebuild_every: "int | None" = None,
    start_method: "str | None" = None,
    backend: "str | Sequence[str] | None" = None,
    store: str = "ram",
    build_workers: "int | None" = None,
    **graph_params,
) -> EngineCore:
    """Build the engine variant matching a workload shape.

    ``build_workers`` moves every graph construction this engine
    performs (the initial fit, per-shard fits, ``rebuild_every`` refits
    and ``split_shard`` rebuilds) onto the process-parallel,
    worker-count-invariant path of
    :mod:`repro.graphs.parallel_build`.  Same seed, same graph, at any
    worker count; ``None`` keeps the legacy sequential builds.

    ``data`` is raw objects or a prepared :class:`~repro.data.Dataset`
    (static engines require it; mutable engines may start empty and be
    populated through ``insert``).  ``shards > 1`` selects a sharded
    engine, ``mutable=True`` a mutable one; both together compose into
    the mutable sharded engine.  ``backend`` picks the numeric backend
    (:mod:`repro.backends`) — a name for every shard, or a per-shard
    sequence on sharded engines.  ``store`` picks where object data
    lives: ``"ram"`` (private copies, the default) or ``"shm"`` (one
    growable shared segment, mutable engines only — always served by
    the mutable *sharded* engine, even at ``shards=1``).  Out-of-core
    ``"memmap"`` storage is a dataset-loading choice
    (:func:`repro.io.open_memmap_dataset`), not an engine knob.  This
    is the **only** place the engine class is chosen — callers above
    the engine layer (the CLI, scripts) stay concrete-class-free.
    """
    from ..data import Dataset

    if shards < 1:
        raise ParameterError(f"shards must be >= 1, got {shards}")
    store_kind = {"list": "ram"}.get(str(store), str(store))
    if store_kind not in ("ram", "shm"):
        raise ParameterError(
            f"store must be 'ram' or 'shm', got {store!r} (memmap data is "
            f"opened with repro.io.open_memmap_dataset, not an engine store)"
        )
    if store_kind == "shm" and not mutable:
        raise ParameterError(
            "store='shm' needs mutable=True: the growable shared store "
            "backs the mutable sharded engine"
        )
    if (
        shards == 1
        and backend is not None
        and not isinstance(backend, str)
    ):
        raise ParameterError(
            "a per-shard backend sequence needs shards > 1; pass a single "
            "backend name"
        )
    is_dataset = isinstance(data, Dataset)
    if mutable:
        # Mutable engines build their graphs incrementally (and rebuild
        # with defaults); refuse knobs they would silently ignore.
        if graph_params:
            raise ParameterError(
                f"mutable engines do not take graph parameters: "
                f"{sorted(graph_params)}"
            )
        if strategy != "permuted":
            raise ParameterError(
                "mutable engines place objects by load, not by a static "
                f"partition strategy (got strategy={strategy!r})"
            )
        objects = None
        if data is not None:
            objects = (
                [data.get(i) for i in range(data.n)] if is_dataset else data
            )
            metric = data.metric if is_dataset else metric
        if shards > 1 or store_kind == "shm":
            from .mutable_sharded import MutableShardedDetectionEngine

            engine = MutableShardedDetectionEngine(
                metric=metric, n_shards=shards, workers=workers, graph=graph,
                K=K, seed=seed, mode=mode, batch_size=batch_size,
                pinned=pinned, cache_radii=cache_radii,
                rebuild_every=rebuild_every, start_method=start_method,
                backend=backend,
                store="shm" if store_kind == "shm" else "list",
                build_workers=build_workers,
            )
            if objects is not None:
                engine.bulk_load(objects)
            return engine
        from .mutable import MutableDetectionEngine

        if objects is not None:
            return MutableDetectionEngine.fit(
                objects, metric=metric, K=K, seed=seed, n_jobs=n_jobs,
                mode=mode, batch_size=batch_size, rebuild_graph=graph,
                cache_radii=cache_radii, rebuild_every=rebuild_every,
                pinned=pinned, backend=backend, build_workers=build_workers,
            )
        return MutableDetectionEngine(
            metric=metric, K=K, seed=seed, n_jobs=n_jobs, mode=mode,
            batch_size=batch_size, rebuild_graph=graph,
            cache_radii=cache_radii, rebuild_every=rebuild_every,
            pinned=pinned, backend=backend, build_workers=build_workers,
        )
    if data is None:
        raise ParameterError("static engines need data; pass mutable=True "
                             "to start empty")
    if shards > 1:
        from .sharded import ShardedDetectionEngine

        dataset = data if is_dataset else Dataset(data, metric)
        return ShardedDetectionEngine(
            dataset, n_shards=shards, workers=workers, strategy=strategy,
            graph=graph, K=K, rng=seed, mode=mode, batch_size=batch_size,
            start_method=start_method, backend=backend,
            build_workers=build_workers, **graph_params,
        )
    from .engine import DetectionEngine

    if is_dataset:
        from ..graphs.base import build_graph
        from ..rng import ensure_rng

        gen = ensure_rng(seed)
        built = build_graph(
            graph, data, K=K, rng=gen, build_workers=build_workers,
            **graph_params,
        )
        return DetectionEngine(
            data, built, n_jobs=n_jobs, rng=gen, mode=mode,
            batch_size=batch_size, cache_radii=cache_radii, backend=backend,
        )
    return DetectionEngine.fit(
        data, metric=metric, graph=graph, K=K, seed=seed, n_jobs=n_jobs,
        mode=mode, batch_size=batch_size, cache_radii=cache_radii,
        backend=backend, build_workers=build_workers, **graph_params,
    )
