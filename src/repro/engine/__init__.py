"""Multi-query serving: fit one index, answer streams of ``(r, k)`` queries.

The subsystem the paper's offline/online split implies but a one-shot
``graph_dod`` call never delivers: :class:`DetectionEngine` keeps the
fitted graph, the verifier and an :class:`EvidenceCache` of proven
per-object count bounds alive across queries, so each new ``(r, k)``
touches only the objects no earlier query already decided.

:class:`ShardedDetectionEngine` is the multi-process scale-out of the
same contract: the dataset is partitioned into shards, each worker
process owns a shard-local sub-engine (graph + cache slice), and an
exact merge layer sums per-shard counts — answers stay bit-identical
to the single-process engine (see ``docs/sharding.md``).
"""

from .engine import DetectionEngine, SweepResult
from .evidence import NO_BOUND, EvidenceCache
from .sharded import ShardedDetectionEngine, ShardWorker, plan_shards

__all__ = [
    "DetectionEngine",
    "ShardedDetectionEngine",
    "ShardWorker",
    "SweepResult",
    "EvidenceCache",
    "NO_BOUND",
    "plan_shards",
]
