"""Multi-query serving: fit one index, answer streams of ``(r, k)`` queries.

The subsystem the paper's offline/online split implies but a one-shot
``graph_dod`` call never delivers: :class:`DetectionEngine` keeps the
fitted graph, the verifier and an :class:`EvidenceCache` of proven
per-object count bounds alive across queries, so each new ``(r, k)``
touches only the objects no earlier query already decided.
"""

from .engine import DetectionEngine, SweepResult
from .evidence import NO_BOUND, EvidenceCache

__all__ = [
    "DetectionEngine",
    "SweepResult",
    "EvidenceCache",
    "NO_BOUND",
]
