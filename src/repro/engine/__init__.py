"""Multi-query serving: fit one index, answer streams of ``(r, k)`` queries.

The subsystem the paper's offline/online split implies but a one-shot
``graph_dod`` call never delivers: :class:`DetectionEngine` keeps the
fitted graph, the verifier and an :class:`EvidenceCache` of proven
per-object count bounds alive across queries, so each new ``(r, k)``
touches only the objects no earlier query already decided.

:class:`ShardedDetectionEngine` is the multi-process scale-out of the
same contract: the dataset is partitioned into shards, each worker
process owns a shard-local sub-engine (graph + cache slice), and an
exact merge layer sums per-shard counts — answers stay bit-identical
to the single-process engine (see ``docs/sharding.md``).

:class:`MutableDetectionEngine` extends the contract to a *mutable*
collection: inserts and deletes repair the cached bounds from their own
distance evaluations instead of dropping them, making one engine the
substrate for dynamic updates, top-n ranking and sliding-window
streaming (see ``docs/incremental.md``).
"""

from .engine import DetectionEngine, SweepResult
from .evidence import NO_BOUND, EvidenceCache
from .mutable import MutableDetectionEngine
from .mutable_sharded import MutableShardedDetectionEngine, MutableShardWorker
from .protocol import (
    EngineCapabilities,
    EngineCore,
    MutableEngineCore,
    create_engine,
    supports,
)
from .sharded import ShardedDetectionEngine, ShardWorker, plan_shards

__all__ = [
    "DetectionEngine",
    "MutableDetectionEngine",
    "MutableShardedDetectionEngine",
    "MutableShardWorker",
    "ShardedDetectionEngine",
    "ShardWorker",
    "SweepResult",
    "EvidenceCache",
    "EngineCapabilities",
    "EngineCore",
    "MutableEngineCore",
    "NO_BOUND",
    "create_engine",
    "supports",
    "plan_shards",
]
