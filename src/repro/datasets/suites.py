"""Named dataset suites mirroring the paper's Table 1 / Table 2.

Each suite reproduces one of the paper's seven real datasets in
*behavioural* terms — same dimensionality, same metric, same
distance-distribution family, power-law neighbor skew, and a default
``(r, k)`` calibrated (see ``scripts/calibrate_suites.py``) so the
outlier ratio lands in the paper's sub-percent-to-few-percent band
(Table 2).  Cardinalities are scaled from millions to thousands; see
DESIGN.md §3 for why the substitution preserves the evaluation.

============  ==========  =====  ================  ==================
suite         paper size  dim    metric            paper (r, k, ratio)
============  ==========  =====  ================  ==================
deep          10,000,000  96     L2 (unit sphere)  0.93,  50, 0.62%
glove          1,193,514  25     angular           0.25,  20, 0.55%
hepmass        7,000,000   27    L1                15,    50, 0.65%
mnist          3,000,000   784   L4                600,   50, 0.34%
pamap2         2,844,868   51    L2                50000, 100, 0.61%
sift           1,000,000   128   L2                320,   40, 1.04%
words            466,551   1-45  edit              5,     15, 4.16%
============  ==========  =====  ================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..rng import ensure_rng
from .synthetic import (
    blobs_with_outliers,
    image_blobs_with_outliers,
    sphere_blobs_with_outliers,
)
from .words import words_with_outliers


@dataclass(frozen=True)
class SuiteSpec:
    """One reproducible workload: generator + metric + calibrated defaults.

    ``default_r``/``default_k`` were calibrated by
    ``scripts/calibrate_suites.py`` against exact neighbor counts at
    ``default_n`` with ``seed=0``; ``calibrated_ratio`` is the exact
    outlier ratio they achieve (our Table 2 analogue).
    """

    name: str
    metric: str
    dim: str
    default_n: int
    default_r: float
    default_k: int
    verify: str  # Exact-Counting strategy the paper uses for this data
    description: str
    maker: Callable[[int, np.random.Generator], Any]
    calibrated_ratio: float = 0.0


def _make_deep(n: int, gen: np.random.Generator):
    return sphere_blobs_with_outliers(
        n, dim=96, n_clusters=10, core_std=0.04, tail_std=0.14, tail_frac=0.06,
        planted_frac=0.004, rng=gen,
    )


def _make_glove(n: int, gen: np.random.Generator):
    return sphere_blobs_with_outliers(
        n, dim=25, n_clusters=10, core_std=0.05, tail_std=0.22, tail_frac=0.06,
        planted_frac=0.004, rng=gen,
    )


def _make_hepmass(n: int, gen: np.random.Generator):
    return blobs_with_outliers(
        n, dim=27, n_clusters=8, core_std=0.6, tail_std=2.0, tail_frac=0.06,
        center_spread=14.0, planted_frac=0.004, planted_spread=70.0, rng=gen,
    )


def _make_mnist(n: int, gen: np.random.Generator):
    return image_blobs_with_outliers(
        n, side=28, n_clusters=8, n_patches=6, noise_std=12.0, tail_std=45.0,
        tail_frac=0.06, planted_frac=0.004, rng=gen,
    )


def _make_pamap2(n: int, gen: np.random.Generator):
    # Normalised to [0, 1e5] like the paper; stronger skew (sensor data).
    pts = blobs_with_outliers(
        n, dim=51, n_clusters=8, core_std=1.0, tail_std=3.5, tail_frac=0.06,
        center_spread=14.0, planted_frac=0.004, planted_spread=70.0, rng=gen,
    )
    lo, hi = pts.min(), pts.max()
    return (pts - lo) / (hi - lo) * 1e5


def _make_sift(n: int, gen: np.random.Generator):
    # Non-negative gradient-histogram-like values; two cluster scales
    # produce the Gaussian-*mixture* distance distribution the paper
    # observes for SIFT.
    a = blobs_with_outliers(
        max(2, n // 2), dim=128, n_clusters=5, core_std=6.0, tail_std=20.0,
        tail_frac=0.06, center_spread=160.0, planted_frac=0.004,
        planted_spread=900.0, rng=gen, nonneg=True,
    )
    b = blobs_with_outliers(
        n - max(2, n // 2), dim=128, n_clusters=5, core_std=12.0, tail_std=36.0,
        tail_frac=0.06, center_spread=420.0, planted_frac=0.004,
        planted_spread=1600.0, rng=gen, nonneg=True,
    )
    pts = np.concatenate([a, b], axis=0)
    return np.ascontiguousarray(pts[gen.permutation(pts.shape[0])])


def _make_words(n: int, gen: np.random.Generator):
    return words_with_outliers(
        n, n_stems=max(8, n // 24), stem_len_lo=5, stem_len_hi=12, max_edits=2,
        planted_frac=0.012, rng=gen,
    )


SUITES: dict[str, SuiteSpec] = {
    "deep": SuiteSpec(
        "deep", "l2", "96", 2000, 1.018, 25, "linear",
        "unit-normalised deep descriptors (Deep1B-like)", _make_deep, 0.0060,
    ),
    "glove": SuiteSpec(
        "glove", "angular", "25", 2000, 0.985, 20, "linear",
        "word-embedding directions (GloVe-like)", _make_glove, 0.0050,
    ),
    "hepmass": SuiteSpec(
        "hepmass", "l1", "27", 2000, 52.4, 25, "vptree",
        "particle-physics features (HEPMASS-like)", _make_hepmass, 0.0060,
    ),
    "mnist": SuiteSpec(
        "mnist", "l4", "784", 700, 700.0, 20, "linear",
        "28x28 grayscale images (MNIST-like)", _make_mnist, 0.0043,
    ),
    "pamap2": SuiteSpec(
        "pamap2", "l2", "51", 2000, 85600.0, 30, "vptree",
        "activity-monitoring sensors, domain [0, 1e5] (PAMAP2-like)", _make_pamap2,
        0.0065,
    ),
    "sift": SuiteSpec(
        "sift", "l2", "128", 1500, 354.9, 20, "linear",
        "non-negative local descriptors (SIFT-like)", _make_sift, 0.0100,
    ),
    "words": SuiteSpec(
        "words", "edit", "1-45", 700, 5.0, 8, "vptree",
        "word families under edit distance (Words-like)", _make_words, 0.0571,
    ),
}

SUITE_NAMES: tuple[str, ...] = tuple(SUITES)


def get_spec(name: str) -> SuiteSpec:
    """Suite specification by name."""
    key = name.strip().lower()
    if key not in SUITES:
        raise ParameterError(f"unknown suite {name!r}; known: {sorted(SUITES)}")
    return SUITES[key]


def make_objects(
    name: str,
    n: int | None = None,
    seed: "int | np.random.Generator | None" = 0,
):
    """Raw objects of a suite (array or list of strings)."""
    spec = get_spec(name)
    gen = ensure_rng(seed)
    return spec.maker(n if n is not None else spec.default_n, gen)


def load_suite(
    name: str,
    n: int | None = None,
    seed: "int | np.random.Generator | None" = 0,
) -> tuple[Dataset, SuiteSpec]:
    """Generate a suite's objects and wrap them in a :class:`Dataset`."""
    spec = get_spec(name)
    objects = make_objects(name, n=n, seed=seed)
    return Dataset(objects, spec.metric), spec
