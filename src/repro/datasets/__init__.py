"""Synthetic workloads mirroring the paper's seven evaluation datasets."""

from .calibrate import (
    calibrate_r,
    neighbor_counts,
    outlier_ratio,
    sample_distance_quantiles,
)
from .suites import SUITE_NAMES, SUITES, SuiteSpec, get_spec, load_suite, make_objects
from .synthetic import (
    blobs_with_outliers,
    cluster_sizes,
    image_blobs_with_outliers,
    sphere_blobs_with_outliers,
)
from .words import mutate_word, random_word, words_with_outliers

__all__ = [
    "SUITES",
    "SUITE_NAMES",
    "SuiteSpec",
    "get_spec",
    "load_suite",
    "make_objects",
    "blobs_with_outliers",
    "sphere_blobs_with_outliers",
    "image_blobs_with_outliers",
    "cluster_sizes",
    "words_with_outliers",
    "random_word",
    "mutate_word",
    "calibrate_r",
    "neighbor_counts",
    "outlier_ratio",
    "sample_distance_quantiles",
]
