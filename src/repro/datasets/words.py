"""Synthetic string data for the edit-distance suite.

Mirrors the paper's Words dataset (English words, length 1-45, edit
distance): clusters are families of words derived from a common stem by
a few random single-character edits — within small edit distance of each
other — while outliers are long random strings (the paper observes that
"outliers in Words have large dimensionality", i.e. long strings, which
is also why their verification is expensive).
"""

from __future__ import annotations

import string

import numpy as np

from ..exceptions import ParameterError
from ..rng import ensure_rng
from .synthetic import cluster_sizes

_ALPHABET = string.ascii_lowercase


def random_word(gen: np.random.Generator, length: int) -> str:
    """Uniform random lowercase word of the given length."""
    picks = gen.integers(0, len(_ALPHABET), size=length)
    return "".join(_ALPHABET[int(t)] for t in picks)


def mutate_word(gen: np.random.Generator, word: str, n_edits: int) -> str:
    """Apply ``n_edits`` random single-character edits to ``word``."""
    chars = list(word)
    for _ in range(n_edits):
        op = int(gen.integers(3)) if len(chars) > 1 else int(gen.integers(2))
        if op == 0:  # substitute
            pos = int(gen.integers(len(chars)))
            chars[pos] = _ALPHABET[int(gen.integers(len(_ALPHABET)))]
        elif op == 1:  # insert
            pos = int(gen.integers(len(chars) + 1))
            chars.insert(pos, _ALPHABET[int(gen.integers(len(_ALPHABET)))])
        else:  # delete
            pos = int(gen.integers(len(chars)))
            del chars[pos]
    return "".join(chars) if chars else _ALPHABET[int(gen.integers(len(_ALPHABET)))]


def words_with_outliers(
    n: int,
    n_stems: int = 40,
    stem_len_lo: int = 5,
    stem_len_hi: int = 12,
    max_edits: int = 2,
    planted_frac: float = 0.01,
    planted_len_lo: int = 25,
    planted_len_hi: int = 45,
    rng: "int | np.random.Generator | None" = None,
    return_labels: bool = False,
):
    """Word families plus long random-string outliers.

    Members of a family are within ``2 * max_edits`` edits of each other
    (both within ``max_edits`` of the stem); distinct random stems of
    length >= 5 are nearly always further apart than that, so families
    are the dense regions.  ``return_labels`` also returns the planted
    ground-truth mask.
    """
    if n < n_stems + 1:
        raise ParameterError(f"n too small for {n_stems} stems: {n}")
    gen = ensure_rng(rng)
    n_planted = max(1, int(round(planted_frac * n))) if planted_frac > 0 else 0
    n_family = n - n_planted

    sizes = cluster_sizes(n_family, n_stems, gen)
    words: list[str] = []
    for c in range(n_stems):
        stem = random_word(gen, int(gen.integers(stem_len_lo, stem_len_hi + 1)))
        words.append(stem)
        for _ in range(int(sizes[c]) - 1):
            words.append(mutate_word(gen, stem, int(gen.integers(1, max_edits + 1))))
    for _ in range(n_planted):
        words.append(
            random_word(gen, int(gen.integers(planted_len_lo, planted_len_hi + 1)))
        )
    labels = np.zeros(len(words), dtype=bool)
    if n_planted:
        labels[-n_planted:] = True
    perm = gen.permutation(len(words))
    shuffled = [words[int(t)] for t in perm]
    if return_labels:
        return shuffled, labels[perm]
    return shuffled
