"""Synthetic vector-data generators.

The paper evaluates on seven real datasets whose distance distributions
it characterises as Gaussian (all but SIFT) or Gaussian-mixture (SIFT),
with power-law neighbor-count skew and sub-percent outlier ratios
(Tables 1-2, §6).  These generators reproduce those *shape* properties:

* clusters with power-law sizes (neighbor-count skew),
* per-cluster heavy tails (``tail_frac`` members drawn at an inflated
  std) producing *natural* borderline objects — the interesting cases
  for a filter,
* a small fraction of *planted* far-away outliers (the "clear outliers"
  the paper's default parameters are tuned to find).

Everything is driven by a seeded generator; a given ``(maker, n, seed)``
always yields the same objects, which is what lets the suite definitions
pin calibrated ``(r, k)`` defaults.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..rng import ensure_rng


def cluster_sizes(
    n: int,
    n_clusters: int,
    rng: "int | np.random.Generator | None" = None,
    alpha: float = 1.1,
) -> np.ndarray:
    """Power-law-ish cluster sizes summing exactly to ``n``.

    Cluster ``c`` gets a share proportional to ``(c+1)^-alpha`` — the
    skew behind the paper's "the number of neighbors in each dataset
    follows power law".
    """
    if n_clusters < 1:
        raise ParameterError(f"n_clusters must be >= 1, got {n_clusters}")
    if n < n_clusters:
        raise ParameterError(f"need n >= n_clusters ({n} < {n_clusters})")
    ensure_rng(rng)  # reserved for future jitter; keeps signature uniform
    weights = (np.arange(1, n_clusters + 1, dtype=np.float64)) ** (-alpha)
    weights /= weights.sum()
    sizes = np.floor(weights * n).astype(np.int64)
    sizes[sizes < 1] = 1
    # Distribute the remainder to the largest clusters.
    while sizes.sum() < n:
        sizes[np.argmax(weights)] += 1
        weights[np.argmax(weights)] *= 0.999
    while sizes.sum() > n:
        big = np.argmax(sizes)
        sizes[big] -= 1
    return sizes


def blobs_with_outliers(
    n: int,
    dim: int,
    n_clusters: int = 8,
    core_std: float = 1.0,
    tail_std: float = 3.0,
    tail_frac: float = 0.05,
    center_spread: float = 12.0,
    planted_frac: float = 0.004,
    planted_spread: float = 60.0,
    rng: "int | np.random.Generator | None" = None,
    nonneg: bool = False,
    return_labels: bool = False,
):
    """Gaussian-mixture blobs with heavy tails and planted far outliers.

    Returns an ``(n, dim)`` float64 array; rows are shuffled so object
    id carries no information about cluster membership.  With
    ``return_labels``, also returns a boolean mask flagging the planted
    outliers (ground truth for detection-quality evaluation).
    """
    if n < n_clusters + 1:
        raise ParameterError(f"n too small for {n_clusters} clusters: {n}")
    gen = ensure_rng(rng)
    n_planted = max(1, int(round(planted_frac * n))) if planted_frac > 0 else 0
    n_clustered = n - n_planted

    sizes = cluster_sizes(n_clustered, n_clusters, gen)
    centers = gen.normal(0.0, center_spread / np.sqrt(dim), size=(n_clusters, dim))
    rows = []
    for c in range(n_clusters):
        size = int(sizes[c])
        n_tail = int(round(tail_frac * size))
        n_core = size - n_tail
        if n_core:
            rows.append(centers[c] + gen.normal(0.0, core_std, size=(n_core, dim)))
        if n_tail:
            rows.append(centers[c] + gen.normal(0.0, tail_std, size=(n_tail, dim)))
    if n_planted:
        # Far-away points: a random cluster center pushed out along a
        # random direction by several center-spreads.
        directions = gen.normal(size=(n_planted, dim))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        anchors = centers[gen.integers(n_clusters, size=n_planted)]
        radii = planted_spread / np.sqrt(dim) * (1.0 + gen.random(n_planted))
        rows.append(anchors + directions * radii[:, None])
    points = np.concatenate(rows, axis=0)
    if nonneg:
        points = np.abs(points)
    labels = np.zeros(points.shape[0], dtype=bool)
    if n_planted:
        labels[-n_planted:] = True
    perm = gen.permutation(points.shape[0])
    points = np.ascontiguousarray(points[perm])
    if return_labels:
        return points, labels[perm]
    return points


def sphere_blobs_with_outliers(
    n: int,
    dim: int,
    n_clusters: int = 10,
    core_std: float = 0.08,
    tail_std: float = 0.25,
    tail_frac: float = 0.05,
    planted_frac: float = 0.004,
    rng: "int | np.random.Generator | None" = None,
    return_labels: bool = False,
):
    """Unit-sphere clusters for angular / normalised-L2 data.

    Cluster centers are random directions; members perturb the center
    and re-normalise.  Planted outliers are near-uniform directions —
    far from every cluster in angle with overwhelming probability in
    moderate dimension.  ``return_labels`` also returns the planted
    ground-truth mask.
    """
    if n < n_clusters + 1:
        raise ParameterError(f"n too small for {n_clusters} clusters: {n}")
    gen = ensure_rng(rng)
    n_planted = max(1, int(round(planted_frac * n))) if planted_frac > 0 else 0
    n_clustered = n - n_planted

    sizes = cluster_sizes(n_clustered, n_clusters, gen)
    centers = gen.normal(size=(n_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    rows = []
    for c in range(n_clusters):
        size = int(sizes[c])
        n_tail = int(round(tail_frac * size))
        n_core = size - n_tail
        for count, std in ((n_core, core_std), (n_tail, tail_std)):
            if count:
                pts = centers[c] + gen.normal(0.0, std, size=(count, dim))
                pts /= np.linalg.norm(pts, axis=1, keepdims=True)
                rows.append(pts)
    if n_planted:
        pts = gen.normal(size=(n_planted, dim))
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
        rows.append(pts)
    points = np.concatenate(rows, axis=0)
    labels = np.zeros(points.shape[0], dtype=bool)
    if n_planted:
        labels[-n_planted:] = True
    perm = gen.permutation(points.shape[0])
    points = np.ascontiguousarray(points[perm])
    if return_labels:
        return points, labels[perm]
    return points


def image_blobs_with_outliers(
    n: int,
    side: int = 28,
    n_clusters: int = 10,
    n_patches: int = 6,
    noise_std: float = 12.0,
    tail_std: float = 40.0,
    tail_frac: float = 0.05,
    planted_frac: float = 0.004,
    rng: "int | np.random.Generator | None" = None,
    return_labels: bool = False,
):
    """MNIST-like images: per-cluster patch templates plus pixel noise.

    Each cluster's template lights up a few rectangular patches of a
    ``side x side`` image (values 0-255); members add Gaussian pixel
    noise.  Planted outliers are uniform-noise images — no template.
    ``return_labels`` also returns the planted ground-truth mask.
    """
    gen = ensure_rng(rng)
    dim = side * side
    n_planted = max(1, int(round(planted_frac * n))) if planted_frac > 0 else 0
    n_clustered = n - n_planted

    templates = np.zeros((n_clusters, side, side))
    for c in range(n_clusters):
        for _ in range(n_patches):
            h = int(gen.integers(3, side // 2))
            w = int(gen.integers(3, side // 2))
            top = int(gen.integers(0, side - h))
            lft = int(gen.integers(0, side - w))
            templates[c, top : top + h, lft : lft + w] = gen.uniform(120, 255)
    templates = templates.reshape(n_clusters, dim)

    sizes = cluster_sizes(n_clustered, n_clusters, gen)
    rows = []
    for c in range(n_clusters):
        size = int(sizes[c])
        n_tail = int(round(tail_frac * size))
        n_core = size - n_tail
        for count, std in ((n_core, noise_std), (n_tail, tail_std)):
            if count:
                rows.append(templates[c] + gen.normal(0.0, std, size=(count, dim)))
    if n_planted:
        rows.append(gen.uniform(0, 255, size=(n_planted, dim)))
    points = np.clip(np.concatenate(rows, axis=0), 0.0, 255.0)
    labels = np.zeros(points.shape[0], dtype=bool)
    if n_planted:
        labels[-n_planted:] = True
    perm = gen.permutation(points.shape[0])
    points = np.ascontiguousarray(points[perm])
    if return_labels:
        return points, labels[perm]
    return points
