"""Parameter calibration helpers.

The paper chooses each dataset's default ``(r, k)`` "so that the outlier
ratio is small or clear outliers are identified" (Table 2).  These
helpers do the same for the synthetic suites: given ``k`` and a target
outlier ratio, bisect on ``r`` against the exact (brute-force) neighbor
counts.  ``scripts/calibrate_suites.py`` used them to pin the defaults
in :mod:`repro.datasets.suites`; they are exported because downstream
users will need the same tooling for their own data.
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError


def neighbor_counts(dataset: Dataset, r: float) -> np.ndarray:
    """Exact neighbor count of every object (no early termination)."""
    if r < 0:
        raise ParameterError(f"radius must be non-negative, got {r}")
    n = dataset.n
    counts = np.empty(n, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    for p in range(n):
        d = dataset.dist_many(p, idx, bound=r)
        counts[p] = int(np.count_nonzero(d <= r)) - 1  # exclude self
    return counts


def outlier_ratio(dataset: Dataset, r: float, k: int) -> float:
    """Fraction of objects with fewer than ``k`` neighbors at radius ``r``."""
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    counts = neighbor_counts(dataset, r)
    return float(np.count_nonzero(counts < k)) / dataset.n


def sample_distance_quantiles(
    dataset: Dataset,
    quantiles: "list[float] | np.ndarray",
    n_pairs: int = 4000,
    rng: "int | np.random.Generator | None" = 0,
) -> np.ndarray:
    """Quantiles of the pairwise-distance distribution (sampled)."""
    from ..rng import ensure_rng

    gen = ensure_rng(rng)
    n = dataset.n
    a = gen.integers(0, n, size=n_pairs)
    b = gen.integers(0, n, size=n_pairs)
    keep = a != b
    d = dataset.pair_dist(a[keep], b[keep])
    return np.quantile(d, quantiles)


def calibrate_r(
    dataset: Dataset,
    k: int,
    target_ratio: float,
    lo: float | None = None,
    hi: float | None = None,
    iters: int = 16,
) -> tuple[float, float]:
    """Bisect on ``r`` for the smallest ratio >= ``target_ratio``.

    The outlier ratio is non-increasing in ``r``; the returned pair is
    ``(r, achieved_ratio)``.  ``lo``/``hi`` default to distance-sample
    quantiles.
    """
    if not 0.0 < target_ratio < 1.0:
        raise ParameterError(f"target_ratio must be in (0,1), got {target_ratio}")
    if lo is None or hi is None:
        q = sample_distance_quantiles(dataset, [0.001, 0.9])
        lo = float(q[0]) if lo is None else lo
        hi = float(q[1]) if hi is None else hi
    if lo >= hi:
        raise ParameterError(f"need lo < hi, got {lo} >= {hi}")
    best_r, best_ratio = hi, outlier_ratio(dataset, hi, k)
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        ratio = outlier_ratio(dataset, mid, k)
        if ratio >= target_ratio:
            best_r, best_ratio = mid, ratio
            lo = mid
        else:
            hi = mid
    return best_r, best_ratio
