"""Levenshtein (edit) distance over strings.

Used by the paper for the Words dataset (Table 1).  Edit distance is a
metric, and its evaluation cost is quadratic in string length — the paper
leans on this in §6 to explain why Words behaves differently from the
vector datasets.

The one-to-many kernel evaluates the DP for *all* candidates
simultaneously with numpy.  The column-wise dependency of the classic DP
(``curr[l] = min(..., curr[l-1] + 1)``) is resolved with a min-plus prefix
scan::

    curr[l] = min_{j <= l} (c[j] + (l - j)) = l + cummin(c - arange)[l]

where ``c`` holds the candidate values before the left-neighbour term.
This turns each query character into a handful of vectorised array ops
over an ``(m, Lmax)`` block instead of ``m`` independent Python DPs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import MetricError
from .base import Metric


class EditStore:
    """Prepared representation of a string collection.

    ``codes`` is an ``(n, max_len)`` uint32 matrix of code points padded
    with zeros; ``lengths`` the true string lengths; ``strings`` the
    originals (kept for :meth:`Edit.get` and round-tripping).
    """

    __slots__ = ("codes", "lengths", "strings")

    def __init__(self, codes: np.ndarray, lengths: np.ndarray, strings: tuple[str, ...]):
        self.codes = codes
        self.lengths = lengths
        self.strings = strings


class Edit(Metric):
    """Levenshtein distance: minimum number of single-character edits."""

    name = "edit"
    is_vector = False

    def prepare(self, objects: Sequence[str]) -> EditStore:
        strings = tuple(objects)
        if len(strings) == 0:
            raise MetricError("edit: empty object collection")
        if not all(isinstance(s, str) for s in strings):
            raise MetricError("edit: all objects must be strings")
        max_len = max((len(s) for s in strings), default=0)
        max_len = max(max_len, 1)
        codes = np.zeros((len(strings), max_len), dtype=np.uint32)
        lengths = np.empty(len(strings), dtype=np.int32)
        for row, s in enumerate(strings):
            lengths[row] = len(s)
            if s:
                codes[row, : len(s)] = np.frombuffer(
                    s.encode("utf-32-le"), dtype=np.uint32
                )
        return EditStore(codes, lengths, strings)

    def n_objects(self, store: EditStore) -> int:
        return len(store.strings)

    def nbytes(self, store: EditStore) -> int:
        payload = sum(len(s) for s in store.strings)
        return int(store.codes.nbytes + store.lengths.nbytes + payload)

    def dist(self, store: EditStore, i: int, j: int) -> float:
        return float(
            self.dist_many(store, i, np.asarray([j], dtype=np.int64))[0]
        )

    def dist_many(
        self,
        store: EditStore,
        i: int,
        idx: np.ndarray,
        bound: float | None = None,
    ) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        q_len = int(store.lengths[i])
        cand_lens = store.lengths[idx].astype(np.int64)
        width = int(cand_lens.max()) if idx.size else 0
        if q_len == 0:
            return cand_lens.astype(np.float64)
        if width == 0:
            return np.full(idx.size, float(q_len))

        query = store.codes[i, :q_len]
        block = store.codes[idx, :width]
        offsets = np.arange(width + 1, dtype=np.float64)
        prev = np.broadcast_to(offsets, (idx.size, width + 1)).copy()
        scratch = np.empty_like(prev)
        for t in range(q_len):
            qc = query[t]
            scratch[:, 0] = t + 1.0
            np.minimum(prev[:, 1:] + 1.0, prev[:, :-1] + (block != qc), out=scratch[:, 1:])
            scratch -= offsets
            np.minimum.accumulate(scratch, axis=1, out=scratch)
            scratch += offsets
            prev, scratch = scratch, prev
            if bound is not None and t + 1 < q_len:
                # Row minima only ever grow; once every candidate's row
                # minimum exceeds the bound no final value can come back
                # below it, so report bound + 1 for all of them.
                if prev.min() > bound:
                    return np.full(idx.size, float(bound) + 1.0)
        return prev[np.arange(idx.size), cand_lens]

    # -- helpers used by Dataset ------------------------------------------

    def take(self, store: EditStore, idx: np.ndarray) -> EditStore:
        idx = np.asarray(idx, dtype=np.int64)
        strings = tuple(store.strings[int(t)] for t in idx)
        return EditStore(
            np.ascontiguousarray(store.codes[idx]),
            np.ascontiguousarray(store.lengths[idx]),
            strings,
        )

    def get(self, store: EditStore, i: int) -> str:
        return store.strings[int(i)]


def levenshtein(a: str, b: str) -> int:
    """Reference scalar Levenshtein distance (used by tests).

    Classic two-row DP; intentionally independent of the vectorised
    kernel so the two implementations can check each other.
    """
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    prev = list(range(len(b) + 1))
    for t, ca in enumerate(a, start=1):
        curr = [t]
        for j, cb in enumerate(b, start=1):
            curr.append(min(prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + (ca != cb)))
        prev = curr
    return prev[-1]


#: Shared instance used by registry and dataset suites.
EDIT = Edit()
