"""Metric abstraction.

A :class:`Metric` turns a raw collection of objects (a 2-D numpy array for
vector data, a list of strings for edit distance) into a *store* — a
prepared, immutable representation optimised for one-to-many distance
evaluation — and then answers distance queries against that store by
object index.

Everything in the library accesses data through this interface, so adding
a new metric space automatically makes every index, graph builder and
detection algorithm available in it.  This mirrors the paper's claim that
the approach applies to any metric space (§1, challenge iii).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np


class LazyFloat32Rows:
    """Per-gather float32 mirror of an out-of-core store.

    Screening kernels address their float32 store only through fancy row
    indexing (``store32[idx]``); for memmap-backed stores this adapter
    gathers the requested float64 rows and casts *those* instead of
    materialising a full float32 copy in RAM.  Casting after the gather
    is element-wise, so the screen values are bit-identical to gathering
    from an eagerly cast copy — the error-band analysis is unchanged.
    """

    __slots__ = ("_base",)

    def __init__(self, base: np.ndarray):
        self._base = base

    @property
    def shape(self):
        return self._base.shape

    @property
    def dtype(self):
        return np.dtype(np.float32)

    def __getitem__(self, idx) -> np.ndarray:
        return np.asarray(self._base[idx], dtype=np.float32)


def screen_store32(store: np.ndarray):
    """The float32 store behind a screen state: eager copy or lazy rows.

    In-RAM stores are cast once (fastest per gather); memmap stores get
    a :class:`LazyFloat32Rows` adapter so screening an out-of-core
    dataset keeps its resident working set at chunk scale.
    """
    if isinstance(store, np.memmap):
        return LazyFloat32Rows(store)
    return store.astype(np.float32)


def screen_abs_max(store: np.ndarray, chunk: int = 4096) -> float:
    """``|store|.max()`` without materialising an out-of-core store."""
    if not store.size:
        return 0.0
    if not isinstance(store, np.memmap):
        return float(np.abs(store).max())
    top = 0.0
    for lo in range(0, store.shape[0], chunk):
        block = np.asarray(store[lo : lo + chunk])
        top = max(top, float(np.abs(block).max()))
    return top


class Metric(ABC):
    """A distance function satisfying the metric axioms.

    Subclasses must guarantee non-negativity, identity of indiscernibles,
    symmetry and the triangle inequality — the DOD algorithms (VP-tree
    pruning, SNIF cluster pruning) rely on the triangle inequality for
    correctness.
    """

    #: short registry name, e.g. ``"l2"``.
    name: str = ""
    #: True when objects are rows of a 2-D float array.
    is_vector: bool = True
    #: True when :meth:`pair_dist` is bitwise row-consistent with
    #: :meth:`dist_many`: for every pair ``(a[t], b[t])`` it returns the
    #: exact float ``dist_many(store, a[t], [b[t]])`` would (clipped
    #: entries above ``bound`` may differ in value but not in whether
    #: they exceed ``bound``).  The batched traversal/verification paths
    #: rely on this to stay bit-identical to the scalar paths; metrics
    #: whose pair kernel uses a different reduction order (e.g. BLAS
    #: matvec vs einsum) must leave it False, and batched callers then
    #: fall back to :meth:`pair_dist_grouped`.
    pair_rowwise_consistent: bool = True

    #: True when the batched kernels are invariant to partitioning the
    #: index batch into chunks — i.e. every returned value is a pure
    #: row-wise reduction that never depends on the batch size.  Only
    #: such metrics may have their out-of-core gathers chunked at the
    #: :class:`~repro.data.Dataset` level; metrics whose kernels pick
    #: size-dependent reduction orders (BLAS matvec) must leave this
    #: False so chunked memmap runs stay bit-identical to in-RAM ones
    #: (their sweeps are still memory-bounded by caller-side chunking).
    chunkable_gather: bool = False

    @abstractmethod
    def prepare(self, objects: Any) -> Any:
        """Validate ``objects`` and return the prepared store."""

    @abstractmethod
    def n_objects(self, store: Any) -> int:
        """Number of objects held by ``store``."""

    @abstractmethod
    def nbytes(self, store: Any) -> int:
        """Approximate memory footprint of ``store`` in bytes."""

    @abstractmethod
    def dist(self, store: Any, i: int, j: int) -> float:
        """Distance between objects ``i`` and ``j``."""

    @abstractmethod
    def dist_many(
        self,
        store: Any,
        i: int,
        idx: np.ndarray,
        bound: float | None = None,
    ) -> np.ndarray:
        """Distances from object ``i`` to each object in ``idx``.

        When ``bound`` is given, entries whose true distance exceeds
        ``bound`` may be reported as any value strictly greater than
        ``bound`` (early abandon); callers that only compare against
        ``bound`` (range counting with radius ``r``) can exploit this.
        """

    def pair_dist(
        self,
        store: Any,
        a: Sequence[int],
        b: Sequence[int],
        bound: float | None = None,
    ) -> np.ndarray:
        """Element-wise distances ``dist(a[t], b[t])``.

        ``bound`` follows the :meth:`dist_many` contract: entries whose
        true distance exceeds ``bound`` may be reported as any value
        strictly greater than ``bound``.  Generic fallback delegates to
        :meth:`pair_dist_grouped`; vector metrics override with a single
        batched kernel.
        """
        return self.pair_dist_grouped(store, a, b, bound=bound)

    def pair_dist_grouped(
        self,
        store: Any,
        a: Sequence[int],
        b: Sequence[int],
        bound: float | None = None,
    ) -> np.ndarray:
        """:meth:`pair_dist` via one :meth:`dist_many` call per distinct
        left-hand object.

        Row-consistent with :meth:`dist_many` by construction, so batched
        callers that must match the scalar path bit-for-bit can always
        use this, at the cost of one kernel per distinct source in ``a``.
        """
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        out = np.empty(a_arr.size, dtype=np.float64)
        if a_arr.size == 0:
            return out
        order = np.argsort(a_arr, kind="stable")
        sorted_a = a_arr[order]
        starts = np.flatnonzero(np.diff(sorted_a)) + 1
        for seg in np.split(order, starts):
            out[seg] = self.dist_many(
                store, int(a_arr[seg[0]]), b_arr[seg], bound=bound
            )
        return out

    # -- reduced-precision screening (numeric backends) --------------------

    def screen_prepare(self, store: Any) -> Any:
        """Reduced-precision screening state for ``store``, or ``None``.

        Screening backends (:mod:`repro.backends`) call this once per
        prepared store.  Metrics that support the float32 screen return
        an object holding whatever :meth:`screen_pair_dist` needs — a
        float32 copy of the store plus the facts behind the error band
        ``eps(r)`` (see ``docs/backends.md``).  The default ``None``
        means "no screen kernel": the backend then leaves every call to
        the exact float64 kernels, which is always correct.
        """
        return None

    def screen_pair_dist(
        self, state: Any, a: Sequence[int], b: Sequence[int], radii: Sequence[float]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Low-precision element-wise distances plus a decided mask.

        Returns ``(values, decided)``: ``values`` is a float64 array of
        screen distances and ``decided[t]`` is True when float32
        rounding provably cannot flip the ``values[t] <= r`` verdict at
        **any** threshold in ``radii`` — i.e. the screen value lies
        outside the metric's error band ``[r - eps(r), r + eps(r)]``
        of every threshold.  Pairs with ``decided[t]`` False must be
        re-evaluated by the caller with the exact kernels.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no screen kernel"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class VectorMetric(Metric):
    """Common plumbing for metrics over rows of a 2-D float64 array."""

    is_vector = True

    def prepare(self, objects: Any) -> np.ndarray:
        from ..exceptions import MetricError

        arr = np.ascontiguousarray(objects, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise MetricError(
                f"{self.name}: expected a 2-D array of vectors, got ndim={arr.ndim}"
            )
        if arr.shape[0] == 0:
            raise MetricError(f"{self.name}: empty object collection")
        if not np.all(np.isfinite(arr)):
            raise MetricError(f"{self.name}: non-finite coordinates in input")
        return arr

    def n_objects(self, store: np.ndarray) -> int:
        return int(store.shape[0])

    def nbytes(self, store: np.ndarray) -> int:
        return int(store.nbytes)

    def dist(self, store: np.ndarray, i: int, j: int) -> float:
        return float(self.dist_many(store, i, np.asarray([j], dtype=np.int64))[0])
