"""Angular distance.

Used by the paper for Glove word embeddings (Table 1).  The angular
distance ``arccos(cos_sim(a, b))`` — the angle between two vectors, in
radians — is a proper metric on the unit sphere (it is the geodesic
distance), unlike raw cosine *similarity* or ``1 - cos``.

Vectors are normalised once at :meth:`prepare` time, so each one-to-many
evaluation is a single matrix-vector product.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MetricError
from .base import VectorMetric


class Angular(VectorMetric):
    """Geodesic (angle) distance between non-zero vectors, in ``[0, pi]``."""

    name = "angular"
    # dist_many reduces via a BLAS matvec, pair_dist via einsum: the two
    # can disagree in the last ulp, so batched exact paths must use the
    # grouped fallback (see Metric.pair_rowwise_consistent).
    pair_rowwise_consistent = False

    def prepare(self, objects) -> np.ndarray:
        arr = super().prepare(objects)
        norms = np.linalg.norm(arr, axis=1)
        if np.any(norms == 0.0):
            raise MetricError("angular: zero vectors have no direction")
        return arr / norms[:, None]

    def dist_many(
        self,
        store: np.ndarray,
        i: int,
        idx: np.ndarray,
        bound: float | None = None,
    ) -> np.ndarray:
        cos = store[idx] @ store[i]
        np.clip(cos, -1.0, 1.0, out=cos)
        return np.arccos(cos)

    def pair_dist(
        self, store: np.ndarray, a, b, bound: float | None = None
    ) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        cos = np.einsum("ij,ij->i", store[a_arr], store[b_arr])
        np.clip(cos, -1.0, 1.0, out=cos)
        return np.arccos(cos)


#: Shared instance used by registry and dataset suites.
ANGULAR = Angular()
