"""Angular distance.

Used by the paper for Glove word embeddings (Table 1).  The angular
distance ``arccos(cos_sim(a, b))`` — the angle between two vectors, in
radians — is a proper metric on the unit sphere (it is the geodesic
distance), unlike raw cosine *similarity* or ``1 - cos``.

Vectors are normalised once at :meth:`prepare` time, so each one-to-many
evaluation is a single matrix-vector product.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import MetricError
from .base import VectorMetric, screen_store32
from .minkowski import SCREEN_EPS32, SCREEN_SAFETY


class _AngularScreen:
    """Float32 unit-vector store plus the cosine-space band width."""

    __slots__ = ("store32", "eps_dot")

    def __init__(self, store32: np.ndarray, eps_dot: float):
        self.store32 = store32
        self.eps_dot = eps_dot


class Angular(VectorMetric):
    """Geodesic (angle) distance between non-zero vectors, in ``[0, pi]``."""

    name = "angular"
    # dist_many reduces via a BLAS matvec, pair_dist via einsum: the two
    # can disagree in the last ulp, so batched exact paths must use the
    # grouped fallback (see Metric.pair_rowwise_consistent).
    pair_rowwise_consistent = False

    def prepare(self, objects) -> np.ndarray:
        arr = super().prepare(objects)
        norms = np.linalg.norm(arr, axis=1)
        if np.any(norms == 0.0):
            raise MetricError("angular: zero vectors have no direction")
        return arr / norms[:, None]

    def dist_many(
        self,
        store: np.ndarray,
        i: int,
        idx: np.ndarray,
        bound: float | None = None,
    ) -> np.ndarray:
        cos = store[idx] @ store[i]
        np.clip(cos, -1.0, 1.0, out=cos)
        return np.arccos(cos)

    def pair_dist(
        self, store: np.ndarray, a, b, bound: float | None = None
    ) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        cos = np.einsum("ij,ij->i", store[a_arr], store[b_arr])
        np.clip(cos, -1.0, 1.0, out=cos)
        return np.arccos(cos)

    # -- float32 screening -------------------------------------------------
    #
    # The screen compares in *cosine* space: ``d <= r`` iff
    # ``cos32 >= cos(r)`` (arccos is decreasing), and the float32 dot
    # product of two unit vectors carries absolute error at most
    # ``(m + 3) * eps32`` (per-term input/product roundings bounded by
    # Cauchy-Schwarz, plus m accumulation roundings on partials of
    # magnitude <= 1).  Deciding against ``cos(r) +- eps_dot`` avoids
    # the unbounded arccos derivative near +-1 entirely; the returned
    # angle values stay verdict-consistent because
    # ``|arccos(x) - arccos(y)| >= |x - y|`` on [-1, 1].

    def screen_prepare(self, store: np.ndarray) -> _AngularScreen:
        eps_dot = SCREEN_SAFETY * (store.shape[1] + 8.0) * SCREEN_EPS32
        return _AngularScreen(screen_store32(store), eps_dot)

    def screen_band(self, state: _AngularScreen, r: float) -> float:
        """Half-width of the rescreen band, in **cosine** space."""
        return state.eps_dot

    def screen_pair_dist(self, state: _AngularScreen, a, b, radii):
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        cos = np.einsum(
            "ij,ij->i", state.store32[a_arr], state.store32[b_arr]
        ).astype(np.float64)
        decided = np.ones(cos.size, dtype=bool)
        for r in radii:
            c = float(np.cos(min(max(float(r), 0.0), np.pi)))
            decided &= np.abs(cos - c) > state.eps_dot
        np.clip(cos, -1.0, 1.0, out=cos)
        return np.arccos(cos), decided


#: Shared instance used by registry and dataset suites.
ANGULAR = Angular()
