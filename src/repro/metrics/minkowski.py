"""Minkowski (Lp-norm) metrics.

The paper's evaluation uses the L2 norm (Deep, PAMAP2, SIFT), L1 norm
(HEPMASS) and L4 norm (MNIST) — see Table 1.  :class:`Minkowski`
implements the general case; :data:`L1`, :data:`L2` and :data:`L4` are the
named instances used by the dataset suites.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .base import VectorMetric


class Minkowski(VectorMetric):
    """The Lp norm ``(sum |a_i - b_i|^p)^(1/p)`` for ``p >= 1``.

    ``p >= 1`` is required for the triangle inequality to hold.
    """

    def __init__(self, p: float):
        if p < 1:
            raise ParameterError(f"Minkowski p must be >= 1 (got {p})")
        self.p = float(p)
        if self.p == int(self.p):
            self.name = f"l{int(self.p)}"
        else:
            self.name = f"l{self.p}"

    def dist_many(
        self,
        store: np.ndarray,
        i: int,
        idx: np.ndarray,
        bound: float | None = None,
    ) -> np.ndarray:
        diff = store[idx] - store[i]
        if self.p == 2.0:
            np.multiply(diff, diff, out=diff)
            return np.sqrt(np.einsum("ij->i", diff))
        if self.p == 1.0:
            np.abs(diff, out=diff)
            return np.einsum("ij->i", diff)
        np.abs(diff, out=diff)
        np.power(diff, self.p, out=diff)
        return np.power(np.einsum("ij->i", diff), 1.0 / self.p)

    def pair_dist(self, store: np.ndarray, a, b) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        diff = store[a_arr] - store[b_arr]
        if self.p == 2.0:
            np.multiply(diff, diff, out=diff)
            return np.sqrt(np.einsum("ij->i", diff))
        np.abs(diff, out=diff)
        if self.p == 1.0:
            return np.einsum("ij->i", diff)
        np.power(diff, self.p, out=diff)
        return np.power(np.einsum("ij->i", diff), 1.0 / self.p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Minkowski(p={self.p:g})"


#: Manhattan distance (HEPMASS in the paper).
L1 = Minkowski(1.0)
#: Euclidean distance (Deep, PAMAP2, SIFT in the paper).
L2 = Minkowski(2.0)
#: L4 norm (MNIST in the paper).
L4 = Minkowski(4.0)
