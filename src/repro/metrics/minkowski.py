"""Minkowski (Lp-norm) metrics.

The paper's evaluation uses the L2 norm (Deep, PAMAP2, SIFT), L1 norm
(HEPMASS) and L4 norm (MNIST) — see Table 1.  :class:`Minkowski`
implements the general case; :data:`L1`, :data:`L2` and :data:`L4` are the
named instances used by the dataset suites.

Both kernels honor the ``bound`` contract of :class:`.base.Metric` with
*early abandonment* on high-dimensional data: the coordinate axis is
processed in chunks and rows whose partial power-sum already exceeds
``bound**p`` are dropped from later chunks.  Surviving rows are then
re-evaluated with the plain single-pass kernel, so every value at or
below ``bound`` is bit-identical to the unbounded kernel — the batched
and scalar detection paths must agree on ``d <= r`` exactly, and they
both compare against the same floats.  The drop test carries a relative
safety margin so a row the single-pass kernel would place within
``bound`` can never be abandoned by the chunked partial sums.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .base import VectorMetric, screen_abs_max, screen_store32

#: early abandonment pays only when the per-row work being skipped
#: (remaining coordinate chunks) outweighs the bookkeeping; below these
#: thresholds the plain one-pass kernel is used.
ABANDON_MIN_DIM = 40
ABANDON_MIN_ROWS = 128
#: coordinate-axis chunk width for the partial-sum filter.
ABANDON_COLS = 32
#: relative slack on ``bound**p`` so chunked-vs-single-pass float noise
#: can never abandon a row whose exact distance is within ``bound``.
_ABANDON_SLACK = 1e-9

#: float32 machine epsilon, the unit of every screening error band.
SCREEN_EPS32 = float(np.finfo(np.float32).eps)
#: multiplier on the derived band width; the analysis below is already
#: conservative, this absorbs anything it idealises (fma, reassociation).
SCREEN_SAFETY = 4.0
#: float32 subnormal threshold (power-sum underflow floor).
_TINY32 = float(np.finfo(np.float32).tiny)
#: refuse to screen stores whose power sums could approach float32 range.
_F32_HUGE = float(np.finfo(np.float32).max) / 8.0


def _beyond(bound: float) -> float:
    """A float strictly greater than ``bound`` (the clip filler)."""
    return max(bound + 1.0, float(np.nextafter(bound, np.inf)))


class _MinkowskiScreen:
    """Float32 store plus the scale facts behind the error band."""

    __slots__ = ("store32", "coord_term", "rel_term", "floor_term")

    def __init__(self, store32, coord_term, rel_term, floor_term):
        self.store32 = store32
        self.coord_term = coord_term
        self.rel_term = rel_term
        self.floor_term = floor_term


class Minkowski(VectorMetric):
    """The Lp norm ``(sum |a_i - b_i|^p)^(1/p)`` for ``p >= 1``.

    ``p >= 1`` is required for the triangle inequality to hold.
    """

    # Every kernel reduces each row independently (einsum "ij->i"), so
    # values never depend on how a batch is chunked — out-of-core
    # gathers may split freely.
    chunkable_gather = True

    def __init__(self, p: float):
        if p < 1:
            raise ParameterError(f"Minkowski p must be >= 1 (got {p})")
        self.p = float(p)
        if self.p == int(self.p):
            self.name = f"l{int(self.p)}"
        else:
            self.name = f"l{self.p}"

    # -- kernels -----------------------------------------------------------

    def _reduce(self, diff: np.ndarray) -> np.ndarray:
        """Row distances from a difference block (mutates ``diff``)."""
        if self.p == 2.0:
            np.multiply(diff, diff, out=diff)
            return np.sqrt(np.einsum("ij->i", diff))
        np.abs(diff, out=diff)
        if self.p == 1.0:
            return np.einsum("ij->i", diff)
        np.power(diff, self.p, out=diff)
        return np.power(np.einsum("ij->i", diff), 1.0 / self.p)

    def _power_block(self, diff: np.ndarray) -> np.ndarray:
        """Row sums of ``|diff|**p`` (mutates ``diff``)."""
        if self.p == 2.0:
            np.multiply(diff, diff, out=diff)
        else:
            np.abs(diff, out=diff)
            if self.p != 1.0:
                np.power(diff, self.p, out=diff)
        return diff.sum(axis=1)

    def _use_abandon(self, store: np.ndarray, rows: int, bound) -> bool:
        return (
            bound is not None
            and bound >= 0
            and rows >= ABANDON_MIN_ROWS
            and store.shape[1] >= ABANDON_MIN_DIM
        )

    def _abandon_survivors(self, take, rows: int, dim: int, bound: float) -> np.ndarray:
        """Indices of rows whose distance may still be within ``bound``.

        ``take(alive, c0, c1)`` yields the (owned, mutable) difference
        block of the surviving rows for one coordinate chunk.
        """
        limit = (float(bound) ** self.p) * (1.0 + _ABANDON_SLACK)
        acc = np.zeros(rows, dtype=np.float64)
        alive = np.arange(rows, dtype=np.int64)
        for c0 in range(0, dim, ABANDON_COLS):
            acc[alive] += self._power_block(take(alive, c0, min(c0 + ABANDON_COLS, dim)))
            alive = alive[acc[alive] <= limit]
            if alive.size == 0:
                break
        return alive

    def dist_many(
        self,
        store: np.ndarray,
        i: int,
        idx: np.ndarray,
        bound: float | None = None,
    ) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if self._use_abandon(store, idx.size, bound):
            q = store[i]
            alive = self._abandon_survivors(
                lambda rows, c0, c1: store[idx[rows], c0:c1] - q[c0:c1],
                idx.size, store.shape[1], bound,
            )
            out = np.full(idx.size, _beyond(bound), dtype=np.float64)
            if alive.size:
                out[alive] = self._reduce(store[idx[alive]] - q)
            return out
        return self._reduce(store[idx] - store[i])

    def pair_dist(
        self, store: np.ndarray, a, b, bound: float | None = None
    ) -> np.ndarray:
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        if self._use_abandon(store, a_arr.size, bound):
            alive = self._abandon_survivors(
                lambda rows, c0, c1: store[a_arr[rows], c0:c1]
                - store[b_arr[rows], c0:c1],
                a_arr.size, store.shape[1], bound,
            )
            out = np.full(a_arr.size, _beyond(bound), dtype=np.float64)
            if alive.size:
                out[alive] = self._reduce(store[a_arr[alive]] - store[b_arr[alive]])
            return out
        return self._reduce(store[a_arr] - store[b_arr])

    # -- float32 screening -------------------------------------------------

    def screen_prepare(self, store: np.ndarray) -> "_MinkowskiScreen | None":
        """Float32 screening state, or ``None`` when out of float32 range.

        The band derivation (``docs/backends.md``): with ``M`` the
        largest coordinate magnitude and ``m`` the dimension, each
        float32 coordinate difference carries absolute error at most
        ``4*eps32*M`` (two input roundings plus the subtraction, which
        covers catastrophic cancellation because the error is bounded
        by the *inputs*, not the difference).  Perturbing every
        coordinate by ``delta`` moves an Lp distance by at most
        ``m**(1/p) * delta`` (Minkowski's inequality), the float32
        power-sum evaluation adds a relative error of order
        ``m * eps32`` on the sum — ``~m/p * eps32`` on the distance —
        and power-sum underflow contributes at most the subnormal
        floor ``(m * tiny32)**(1/p)``.
        """
        dim = int(store.shape[1])
        scale = screen_abs_max(store)
        # Power sums must stay well inside float32 range, else the
        # screen values saturate and the band analysis is void.
        if dim == 0 or (2.0 * scale) ** self.p * dim > _F32_HUGE:
            return None
        coord = (dim ** (1.0 / self.p)) * 4.0 * SCREEN_EPS32 * scale
        rel = ((dim + 8.0) / self.p + 4.0) * SCREEN_EPS32
        floor = (dim * _TINY32) ** (1.0 / self.p)
        return _MinkowskiScreen(screen_store32(store), coord, rel, floor)

    def screen_band(self, state: _MinkowskiScreen, r: float) -> float:
        """Half-width of the rescreen band around threshold ``r``."""
        return SCREEN_SAFETY * (
            state.coord_term
            + (abs(r) + state.coord_term) * state.rel_term
            + state.floor_term
        )

    def screen_pair_dist(self, state: _MinkowskiScreen, a, b, radii):
        a_arr = np.asarray(a, dtype=np.int64)
        b_arr = np.asarray(b, dtype=np.int64)
        d = self._reduce(
            state.store32[a_arr] - state.store32[b_arr]
        ).astype(np.float64)
        decided = np.ones(d.size, dtype=bool)
        for r in radii:
            decided &= np.abs(d - r) > self.screen_band(state, float(r))
        return d, decided

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Minkowski(p={self.p:g})"


#: Manhattan distance (HEPMASS in the paper).
L1 = Minkowski(1.0)
#: Euclidean distance (Deep, PAMAP2, SIFT in the paper).
L2 = Minkowski(2.0)
#: L4 norm (MNIST in the paper).
L4 = Minkowski(4.0)
