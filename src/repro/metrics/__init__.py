"""Metric spaces supported by the reproduction.

The paper evaluates on L1, L2 and L4 norms, angular distance and edit
distance (Table 1); all are implemented here behind a uniform
:class:`~repro.metrics.base.Metric` interface with vectorised one-to-many
kernels.
"""

from .angular import ANGULAR, Angular
from .base import Metric, VectorMetric
from .discrete import HAMMING, JACCARD, Hamming, Jaccard, JaccardStore
from .edit import EDIT, Edit, EditStore, levenshtein
from .minkowski import L1, L2, L4, Minkowski
from .registry import available_metrics, resolve_metric

__all__ = [
    "Metric",
    "VectorMetric",
    "Minkowski",
    "Angular",
    "Edit",
    "EditStore",
    "levenshtein",
    "Hamming",
    "Jaccard",
    "JaccardStore",
    "L1",
    "L2",
    "L4",
    "ANGULAR",
    "EDIT",
    "HAMMING",
    "JACCARD",
    "resolve_metric",
    "available_metrics",
]
