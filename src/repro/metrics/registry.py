"""Name-based metric lookup.

Algorithms and the CLI accept metrics by short name (``"l2"``,
``"angular"``, ``"edit"``, ``"lp:3"``), so experiment configuration stays
plain data.
"""

from __future__ import annotations

from ..exceptions import MetricError
from .angular import ANGULAR, Angular
from .base import Metric
from .discrete import HAMMING, JACCARD, Hamming, Jaccard
from .edit import EDIT, Edit
from .minkowski import L1, L2, L4, Minkowski

_NAMED: dict[str, Metric] = {
    "l1": L1,
    "l2": L2,
    "l4": L4,
    "euclidean": L2,
    "manhattan": L1,
    "angular": ANGULAR,
    "edit": EDIT,
    "levenshtein": EDIT,
    "hamming": HAMMING,
    "jaccard": JACCARD,
}


def resolve_metric(metric: "str | Metric") -> Metric:
    """Return a :class:`Metric` instance for ``metric``.

    Accepts an instance (returned unchanged), a registered name, or the
    ``"lp:<p>"`` form for an arbitrary Minkowski exponent.
    """
    if isinstance(metric, Metric):
        return metric
    if not isinstance(metric, str):
        raise MetricError(f"cannot interpret {metric!r} as a metric")
    key = metric.strip().lower()
    if key in _NAMED:
        return _NAMED[key]
    if key.startswith("lp:"):
        try:
            return Minkowski(float(key[3:]))
        except ValueError as exc:
            raise MetricError(f"bad Minkowski exponent in {metric!r}") from exc
    raise MetricError(
        f"unknown metric {metric!r}; known: {sorted(_NAMED)} or 'lp:<p>'"
    )


def available_metrics() -> list[str]:
    """Names accepted by :func:`resolve_metric`."""
    return sorted(_NAMED)


__all__ = [
    "resolve_metric",
    "available_metrics",
    "Metric",
    "Minkowski",
    "Angular",
    "Edit",
    "L1",
    "L2",
    "L4",
    "ANGULAR",
    "EDIT",
]
