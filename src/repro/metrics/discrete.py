"""Discrete metrics: Hamming over binary codes, Jaccard over sets.

The paper motivates DOD for "many data types" (§1); binary fingerprints
(semantic hashes, chemical fingerprints) and sets (tags, baskets) are
two common ones beyond the evaluated six spaces.  Both distances below
are true metrics, so every index and graph in the library applies
unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import MetricError
from .base import Metric


class Hamming(Metric):
    """Number of differing positions between equal-length binary codes."""

    name = "hamming"
    is_vector = True

    def prepare(self, objects) -> np.ndarray:
        arr = np.ascontiguousarray(objects)
        if arr.ndim != 2:
            raise MetricError("hamming: expected a 2-D array of codes")
        if arr.shape[0] == 0:
            raise MetricError("hamming: empty object collection")
        uniq = np.unique(arr)
        if not np.isin(uniq, (0, 1)).all():
            raise MetricError("hamming: codes must be binary (0/1)")
        return arr.astype(np.uint8)

    def n_objects(self, store: np.ndarray) -> int:
        return int(store.shape[0])

    def nbytes(self, store: np.ndarray) -> int:
        return int(store.nbytes)

    def dist(self, store: np.ndarray, i: int, j: int) -> float:
        return float(np.count_nonzero(store[i] != store[j]))

    def dist_many(
        self, store: np.ndarray, i: int, idx: np.ndarray, bound: float | None = None
    ) -> np.ndarray:
        diff = store[idx] != store[i]
        return diff.sum(axis=1).astype(np.float64)

    def pair_dist(
        self, store: np.ndarray, a, b, bound: float | None = None
    ) -> np.ndarray:
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        return (store[a] != store[b]).sum(axis=1).astype(np.float64)


class JaccardStore:
    """Membership matrix plus the element universe and original sets."""

    __slots__ = ("matrix", "popcount", "universe", "sets")

    def __init__(self, matrix: np.ndarray, universe: list, sets: tuple[frozenset, ...]):
        self.matrix = matrix
        self.popcount = matrix.sum(axis=1).astype(np.float64)
        self.universe = universe
        self.sets = sets


class Jaccard(Metric):
    """Jaccard distance ``1 - |A ∩ B| / |A ∪ B|`` between finite sets.

    A proper metric (the Jaccard distance satisfies the triangle
    inequality); two empty sets are at distance 0.  Sets are encoded as
    rows of a dense membership matrix over the observed element
    universe — fine for the tens of thousands of elements this library
    targets, and it turns one-to-many evaluation into a single
    matrix-vector product.
    """

    name = "jaccard"
    is_vector = False

    def prepare(self, objects: Sequence[Iterable]) -> JaccardStore:
        sets = tuple(frozenset(obj) for obj in objects)
        if len(sets) == 0:
            raise MetricError("jaccard: empty object collection")
        universe: list = sorted({e for s in sets for e in s}, key=repr)
        index = {e: t for t, e in enumerate(universe)}
        matrix = np.zeros((len(sets), max(len(universe), 1)), dtype=np.uint8)
        for row, s in enumerate(sets):
            for e in s:
                matrix[row, index[e]] = 1
        return JaccardStore(matrix, universe, sets)

    def n_objects(self, store: JaccardStore) -> int:
        return len(store.sets)

    def nbytes(self, store: JaccardStore) -> int:
        return int(store.matrix.nbytes + store.popcount.nbytes)

    def dist(self, store: JaccardStore, i: int, j: int) -> float:
        return float(
            self.dist_many(store, i, np.asarray([j], dtype=np.int64))[0]
        )

    def dist_many(
        self, store: JaccardStore, i: int, idx: np.ndarray, bound: float | None = None
    ) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        inter = (store.matrix[idx] @ store.matrix[i]).astype(np.float64)
        union = store.popcount[idx] + store.popcount[i] - inter
        out = np.ones(idx.size, dtype=np.float64)
        nonzero = union > 0
        out[nonzero] = 1.0 - inter[nonzero] / union[nonzero]
        out[~nonzero] = 0.0  # both sets empty: identical
        return out

    # -- helpers used by Dataset ------------------------------------------

    def take(self, store: JaccardStore, idx: np.ndarray) -> JaccardStore:
        idx = np.asarray(idx, dtype=np.int64)
        sets = tuple(store.sets[int(t)] for t in idx)
        return JaccardStore(
            np.ascontiguousarray(store.matrix[idx]), store.universe, sets
        )

    def get(self, store: JaccardStore, i: int) -> frozenset:
        return store.sets[int(i)]


#: shared instances for the registry.
HAMMING = Hamming()
JACCARD = Jaccard()
