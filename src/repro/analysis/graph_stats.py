"""Structural diagnostics for proximity graphs.

Used by tests and the experiment write-ups to check the properties the
paper claims: MRPG is connected after Connect-SubGraphs, its AKNN lists
have high recall, degrees stay O(K), and monotonic-path coverage rises
after Remove-Detours.

networkx is used here (analysis only — the library core never depends
on it).
"""

from __future__ import annotations

import numpy as np

from ..data import Dataset
from ..exceptions import ParameterError
from ..graphs.adjacency import Graph
from ..index.linear import brute_force_knn
from ..rng import ensure_rng


def to_networkx(graph: Graph, directed: bool = True):
    """Export adjacency to a networkx graph (analysis convenience)."""
    import networkx as nx

    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(graph.n))
    for u in range(graph.n):
        for v in graph.neighbors_list(u):
            g.add_edge(u, v)
    return g


def connectivity_report(graph: Graph) -> dict:
    """Weak/strong component counts and the largest component size."""
    import networkx as nx

    g = to_networkx(graph, directed=True)
    weak = list(nx.weakly_connected_components(g))
    strong = list(nx.strongly_connected_components(g))
    return {
        "n_weak_components": len(weak),
        "n_strong_components": len(strong),
        "largest_weak": max((len(c) for c in weak), default=0),
        "largest_strong": max((len(c) for c in strong), default=0),
    }


def degree_stats(graph: Graph) -> dict:
    """Out-degree distribution summary."""
    degs = np.asarray([graph.degree(v) for v in range(graph.n)], dtype=np.int64)
    return {
        "min": int(degs.min()),
        "mean": float(degs.mean()),
        "max": int(degs.max()),
        "total_links": int(degs.sum()),
    }


def aknn_recall(
    dataset: Dataset,
    graph: Graph,
    K: int,
    sample_size: int = 100,
    rng: "int | np.random.Generator | None" = 0,
) -> float:
    """Recall of the graph's out-links against true K-NN, on a sample.

    A vertex scores by how many of its true K nearest neighbors appear
    among its out-links (Property 1 of MRPG).
    """
    if K < 1:
        raise ParameterError(f"K must be >= 1, got {K}")
    gen = ensure_rng(rng)
    sample = gen.choice(dataset.n, size=min(sample_size, dataset.n), replace=False)
    hits = 0
    for p in sample:
        p = int(p)
        true_ids, _ = brute_force_knn(dataset, p, K)
        links = set(graph.neighbors_list(p))
        hits += sum(1 for t in true_ids if int(t) in links)
    return hits / (K * sample.size)


def monotonic_path_coverage(
    dataset: Dataset,
    graph: Graph,
    r: float,
    sample_size: int = 50,
    rng: "int | np.random.Generator | None" = 0,
) -> float:
    """Fraction of (object, neighbor-within-r) pairs reachable by
    Greedy-Counting-style traversal restricted to radius r.

    A direct empirical read on the paper's "reachability of neighbors":
    higher is better, and Remove-Detours should raise it.
    """
    from ..core.counting import VisitTracker, greedy_count
    from ..index.linear import brute_force_range

    gen = ensure_rng(rng)
    sample = gen.choice(dataset.n, size=min(sample_size, dataset.n), replace=False)
    tracker = VisitTracker(graph.n)
    reached_total = 0
    neighbor_total = 0
    for p in sample:
        p = int(p)
        true_neighbors = brute_force_range(dataset, p, r)
        if true_neighbors.size == 0:
            continue
        neighbor_total += true_neighbors.size
        # A greedy count with k = #neighbors reaches what it can reach.
        reached = greedy_count(
            dataset, graph, p, r, k=int(true_neighbors.size), tracker=tracker
        )
        reached_total += min(reached, true_neighbors.size)
    if neighbor_total == 0:
        return 1.0
    return reached_total / neighbor_total
