"""Instrumentation: false-positive, connectivity and recall diagnostics."""

from .evaluation import DetectionQuality, detection_quality, quality_over_r
from .fp import FilterStats, filtering_stats
from .graph_stats import (
    aknn_recall,
    connectivity_report,
    degree_stats,
    monotonic_path_coverage,
    to_networkx,
)
from ..core.intrinsic import estimate_intrinsic_dim

__all__ = [
    "DetectionQuality",
    "detection_quality",
    "quality_over_r",
    "FilterStats",
    "filtering_stats",
    "aknn_recall",
    "connectivity_report",
    "degree_stats",
    "monotonic_path_coverage",
    "to_networkx",
    "estimate_intrinsic_dim",
]
