"""False-positive accounting for the filtering phase.

Theorem 1 says detection costs ``O((f + t) n)`` — ``f`` (filter false
positives) is *the* quantity a proximity graph is judged by, and Table 7
of the paper reports exactly it.  :func:`filtering_stats` runs the
filtering phase alone and decomposes its verdicts against the exact
answer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counting import FilterOutcome, VisitTracker, classify
from ..core.verify import Verifier
from ..data import Dataset
from ..graphs.adjacency import Graph


@dataclass
class FilterStats:
    """Decomposed filtering-phase outcome.

    ``false_positives`` is the paper's ``f``: inliers the filter failed
    to certify, which the verification phase must process.
    """

    n: int
    candidates: int
    direct_outliers: int
    outliers: int
    false_positives: int
    filter_pairs: int

    @property
    def fp_rate(self) -> float:
        return self.false_positives / self.n if self.n else 0.0


def filtering_stats(
    dataset: Dataset,
    graph: Graph,
    r: float,
    k: int,
    verifier: Verifier | None = None,
    max_visits: int | None = None,
) -> FilterStats:
    """Run the filtering phase and score it against exact verification."""
    if not graph.finalized:
        graph.finalize()
    if verifier is None:
        verifier = Verifier(dataset)
    tracker = VisitTracker(graph.n)
    view = dataset.view()
    candidates: list[int] = []
    direct: list[int] = []
    for p in range(dataset.n):
        outcome = classify(view, graph, p, r, k, tracker=tracker, max_visits=max_visits)
        if outcome is FilterOutcome.CANDIDATE:
            candidates.append(p)
        elif outcome is FilterOutcome.OUTLIER:
            direct.append(p)
    filter_pairs = view.counter.pairs

    true_among_candidates = sum(
        1 for p in candidates if verifier.is_outlier(p, r, k)
    )
    outliers = len(direct) + true_among_candidates
    false_positives = len(candidates) - true_among_candidates
    return FilterStats(
        n=dataset.n,
        candidates=len(candidates),
        direct_outliers=len(direct),
        outliers=outliers,
        false_positives=false_positives,
        filter_pairs=filter_pairs,
    )
