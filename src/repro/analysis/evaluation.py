"""Detection-quality evaluation against ground truth.

The paper motivates DOD with its downstream usefulness — Campos et
al.'s study (its ref [11]) evaluates unsupervised detectors by
precision/recall against labelled anomalies.  The synthetic generators
in :mod:`repro.datasets` expose their planted outliers
(``return_labels=True``), which makes that evaluation runnable here:
how well does an exact (r, k) threshold recover the planted anomalies,
and how does the choice of ``r`` trade precision against recall?

Note the two notions kept deliberately distinct throughout this
repository: *(r, k)-outlierness* is a mathematical predicate the
algorithms answer **exactly**; *detection quality* measures how well
that predicate matches an external ground truth.  Nothing here affects
the former.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import DODResult
from ..data import Dataset
from ..datasets.calibrate import neighbor_counts
from ..exceptions import ParameterError


@dataclass
class DetectionQuality:
    """Precision/recall of a detected id set against ground truth."""

    n: int
    n_detected: int
    n_true: int
    true_positives: int

    @property
    def precision(self) -> float:
        return self.true_positives / self.n_detected if self.n_detected else 1.0

    @property
    def recall(self) -> float:
        return self.true_positives / self.n_true if self.n_true else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DetectionQuality(precision={self.precision:.3f}, "
            f"recall={self.recall:.3f}, f1={self.f1:.3f})"
        )


def detection_quality(
    detected: "np.ndarray | DODResult",
    truth: np.ndarray,
) -> DetectionQuality:
    """Score a detected outlier set against a boolean ground-truth mask."""
    if isinstance(detected, DODResult):
        n = detected.n
        ids = np.asarray(detected.outliers, dtype=np.int64)
    else:
        ids = np.asarray(detected, dtype=np.int64)
        n = int(np.asarray(truth).shape[0])
    truth = np.asarray(truth, dtype=bool)
    if truth.shape[0] != n:
        raise ParameterError(
            f"truth mask has {truth.shape[0]} entries for {n} objects"
        )
    if ids.size and (ids.min() < 0 or ids.max() >= n):
        raise ParameterError("detected ids out of range")
    tp = int(truth[ids].sum())
    return DetectionQuality(
        n=n, n_detected=int(ids.size), n_true=int(truth.sum()), true_positives=tp
    )


def quality_over_r(
    dataset: Dataset,
    truth: np.ndarray,
    k: int,
    r_values: "list[float] | np.ndarray",
) -> list[tuple[float, DetectionQuality]]:
    """Precision/recall of the exact (r, k) predicate across radii.

    One pass of exact neighbor counting per radius; intended for the
    parameter-selection study in ``examples/detection_quality.py``.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k}")
    truth = np.asarray(truth, dtype=bool)
    if truth.shape[0] != dataset.n:
        raise ParameterError("truth mask length mismatch")
    out = []
    for r in r_values:
        counts = neighbor_counts(dataset, float(r))
        detected = np.flatnonzero(counts < k)
        out.append((float(r), detection_quality(detected, truth)))
    return out
