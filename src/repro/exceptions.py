"""Exception types for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MetricError(ReproError):
    """An object collection is incompatible with the chosen metric."""


class GraphError(ReproError):
    """A proximity graph is malformed or used incorrectly."""


class ParameterError(ReproError):
    """An algorithm parameter is out of its valid range."""


class BackendError(ReproError):
    """A numeric backend is unknown or its dependency is unavailable."""


class BudgetExceeded(ReproError):
    """An experiment exceeded its configured time budget.

    Mirrors the paper's ``NA`` entries: algorithms that could not finish
    pre-processing or detection within the time limit are reported as NA.
    """

    def __init__(self, what: str, budget_s: float):
        super().__init__(f"{what} exceeded the {budget_s:.1f}s budget")
        self.what = what
        self.budget_s = budget_s
